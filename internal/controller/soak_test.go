package controller

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/topology"
)

// TestControllerSoak runs the reconcile loop through hundreds of
// randomized topology mutations against a crash-, hang- and
// failure-injecting actuator, asserting after every step that
//
//   - the never-degrade invariant held: worst-case damage <= the
//     step's pre-migration baseline,
//   - the logical placement still validates,
//   - the physical data plane matches the logical placement up to the
//     one journaled in-flight move,
//
// and that every injected crash is followed by a successful
// checkpoint reload plus recovery. At the end the flaky data plane is
// swapped for a healthy one, caps are lifted and nodes restored, and
// the cluster must quiesce clean with zero leaked prepared copies and
// an exact physical/logical match.
func TestControllerSoak(t *testing.T) {
	for _, seed := range []int64{101, 202} {
		seed := seed
		t.Run(string(rune('A'+seed%2))+"-seed", func(t *testing.T) {
			runSoak(t, seed)
		})
	}
}

func runSoak(t *testing.T, seed int64) {
	const (
		n, r, b = 24, 3, 40
		steps   = 220
		maxDown = 6 // never drain/fail more than this many nodes at once
	)
	rng := rand.New(rand.NewSource(seed))
	topo, err := topology.UniformTree(n, 3, 2) // 3 zones x 2 racks of 4
	if err != nil {
		t.Fatal(err)
	}
	pl := ringPlacement(t, n, r, b)
	journal := filepath.Join(t.TempDir(), "soak.json")
	mem := NewMemActuator(pl)
	fa := NewFaultActuator(mem, seed*7+1, FaultProfile{
		CrashRate: 0.02,
		HangRate:  0.02,
		FailRate:  0.05,
	})
	opts := Options{
		CallTimeout: 20 * time.Millisecond,
		Retries:     2,
		Backoff:     time.Microsecond,
		Sleep:       func(time.Duration) {},
	}
	c, err := New(pl, Config{
		Topo: topo, Level: topology.Leaf, S: 2, DFail: 1, MaxMoves: 2,
		Actuator: fa, Journal: journal, Opts: opts,
	})
	if err != nil {
		t.Fatal(err)
	}

	crashes := 0
	// reloadAndRecover is the crash-restart path: rebuild the process
	// from the journal and resolve the in-flight move. Recovery itself
	// actuates (and so can crash again); it must converge regardless.
	reloadAndRecover := func() *StepReport {
		for attempt := 0; attempt < 500; attempt++ {
			var err error
			c, err = Load(journal, fa, opts)
			if err != nil {
				t.Fatalf("reload after crash: %v", err)
			}
			rep, err := c.Recover()
			if err == nil {
				return rep
			}
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("recovery: %v", err)
			}
			crashes++
		}
		t.Fatal("recovery never converged")
		return nil
	}
	check := func(step int, rep *StepReport) {
		t.Helper()
		if rep.Damage > rep.Baseline {
			t.Fatalf("step %d: invariant violated: damage %d > baseline %d (outcome %s: %s)",
				step, rep.Damage, rep.Baseline, rep.Outcome, rep.Reason)
		}
		cur := c.Placement()
		if err := cur.Validate(); err != nil {
			t.Fatalf("step %d: placement invalid: %v", step, err)
		}
		if diff := mem.Diff(cur, c.InFlightMove()); diff != "" {
			t.Fatalf("step %d: physical/logical divergence: %s", step, diff)
		}
	}
	run := func(step int, do func() (*StepReport, error)) {
		t.Helper()
		rep, err := do()
		if errors.Is(err, ErrCrashed) {
			crashes++
			rep = reloadAndRecover()
		} else if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		check(step, rep)
	}

	statuses := make([]NodeStatus, n)
	capped := map[string]bool{}
	gen := newMutationGen(rng, topo, statuses, capped, maxDown)
	for i := 0; i < steps; i++ {
		mut := gen()
		run(i, func() (*StepReport, error) { return c.Apply(mut) })
		if i%5 == 4 { // drain leftover work between mutations
			run(i, func() (*StepReport, error) { return c.Step() })
		}
	}

	// The fault schedule must actually have exercised every injection
	// mode, or the soak proved nothing.
	calls, failures, hangs, faCrashes := fa.Counts()
	if calls == 0 || failures == 0 || hangs == 0 || faCrashes == 0 {
		t.Fatalf("fault injection too quiet: calls=%d failures=%d hangs=%d crashes=%d",
			calls, failures, hangs, faCrashes)
	}
	if crashes == 0 {
		t.Fatal("no crash ever reached the driver")
	}

	// Swap in a healthy data plane (the journal is the source of
	// truth), lift every cap, restore every node, and quiesce.
	c, err = Load(journal, mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	check(steps, rep)
	for name := range capped {
		run(steps, func() (*StepReport, error) {
			return c.Apply(Mutation{Kind: MutCap, Domain: name, Cap: 0})
		})
	}
	for nd := range statuses {
		if statuses[nd] != NodeActive {
			nd := nd
			run(steps, func() (*StepReport, error) {
				return c.Apply(Mutation{Kind: MutRestore, Node: nd})
			})
		}
	}
	var final *StepReport
	for i := 0; i < 50; i++ {
		final, err = c.Step()
		if err != nil {
			t.Fatal(err)
		}
		check(steps+i, final)
		if final.Outcome == OutcomeClean {
			break
		}
	}
	if final.Outcome != OutcomeClean {
		t.Fatalf("never quiesced clean: %s (%s)", final.Outcome, final.Reason)
	}
	if c.InFlightMove() != nil {
		t.Fatal("quiesced with a move still in flight")
	}
	if leaked := mem.PreparedCount(); leaked != 0 {
		t.Fatalf("leaked %d prepared copies", leaked)
	}
	if diff := mem.Diff(c.Placement(), nil); diff != "" {
		t.Fatalf("final divergence: %s", diff)
	}
}

// newMutationGen builds a seeded mutation stream over topo that keeps
// the cluster plausible: at most maxDown nodes out at once, caps set a
// few replicas under each domain's fair share, and everything
// eventually restorable. It maintains statuses/capped as the mirror of
// what the stream has done (every generated mutation is consumed).
func newMutationGen(rng *rand.Rand, topo *topology.Topology, statuses []NodeStatus, capped map[string]bool, maxDown int) func() Mutation {
	type dom struct {
		name string
		size int
	}
	var domains []dom
	for l := range topo.Tree {
		for _, d := range topo.Tree[l] {
			domains = append(domains, dom{d.Name, len(d.Nodes)})
		}
	}
	n := len(statuses)
	downNodes := func() []int {
		var ds []int
		for nd, st := range statuses {
			if st != NodeActive {
				ds = append(ds, nd)
			}
		}
		return ds
	}
	return func() Mutation {
		down := downNodes()
		roll := rng.Float64()
		switch {
		case len(down) >= maxDown || (roll < 0.25 && len(down) > 0):
			nd := down[rng.Intn(len(down))]
			statuses[nd] = NodeActive
			return Mutation{Kind: MutRestore, Node: nd}
		case roll < 0.50:
			nd := rng.Intn(n)
			statuses[nd] = NodeDraining
			return Mutation{Kind: MutDrain, Node: nd}
		case roll < 0.65:
			nd := rng.Intn(n)
			statuses[nd] = NodeFailed
			return Mutation{Kind: MutFail, Node: nd}
		case roll < 0.85:
			return Mutation{Kind: MutWeight, Node: rng.Intn(n), Weight: 1 + rng.Intn(4)}
		default:
			if len(capped) > 0 && rng.Float64() < 0.4 {
				for name := range capped { // map order is fine: any capped domain
					delete(capped, name)
					return Mutation{Kind: MutCap, Domain: name, Cap: 0}
				}
			}
			d := domains[rng.Intn(len(domains))]
			capValue := d.size*5 - rng.Intn(4) // fair share is 5 replicas/node
			capped[d.name] = true
			return Mutation{Kind: MutCap, Domain: d.name, Cap: capValue}
		}
	}
}
