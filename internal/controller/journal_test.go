package controller

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// validCheckpointBytes builds a real controller and returns its
// journal — the seed corpus for the fuzzer and the fixture for the
// round-trip tests.
func validCheckpointBytes(t testing.TB) []byte {
	topo, err := topology.Uniform(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := ringPlacement(t, 8, 3, 12)
	journal := filepath.Join(t.TempDir(), "ck.json")
	c, err := New(pl, Config{
		Topo: topo, Level: topology.Leaf, S: 2, DFail: 1, MaxMoves: 2,
		Actuator: NewMemActuator(pl), Journal: journal, Opts: testOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Park a move in flight so the fuzzer sees the full shape.
	c.mu.Lock()
	c.inflight = &InFlight{Move: Move{Obj: 1, From: 1, To: 5}, Phase: PhasePrepared}
	c.inv.init(c.applied, c.inflight) // injected, not actuated: reseed the shadow
	err = c.saveJournal()
	c.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckpointRoundTrip(t *testing.T) {
	data := validCheckpointBytes(t)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(out)
	if err != nil {
		t.Fatalf("re-decoding our own encoding: %v", err)
	}
	if !reflect.DeepEqual(ck, ck2) {
		t.Fatal("checkpoint changed across encode/decode round trip")
	}
	if ck.InFlight == nil || ck.InFlight.Phase != PhasePrepared {
		t.Fatalf("in-flight lost in round trip: %+v", ck.InFlight)
	}
}

// TestJournalAtomicWrite checks that saveJournal leaves exactly the
// journal behind — no stray temp files — and that a decode-garbage
// file is rejected loudly rather than half-loaded.
func TestJournalAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := writeFileSync(path, validCheckpointBytes(t)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ck.json" {
		t.Fatalf("journal dir polluted: %v", entries)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"n":-3`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("torn journal decoded without error")
	}
}

// FuzzJournalDecode hammers DecodeCheckpoint with mutated journals: it
// must never panic, and anything it accepts must re-encode to a
// byte-identical semantic state (decode-encode-decode fixpoint).
func FuzzJournalDecode(f *testing.F) {
	seed := validCheckpointBytes(f)
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add(bytes.Replace(seed, []byte(`"phase": "prepared"`), []byte(`"phase": "exploded"`), 1))
	f.Add(bytes.Replace(seed, []byte(`"n": 8`), []byte(`"n": 1000000`), 1))
	f.Add(bytes.Replace(seed, []byte(`"applied"`), []byte(`"APPLIED"`), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return // rejected is fine; panicking or half-loading is not
		}
		out, err := ck.Encode()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to encode: %v", err)
		}
		ck2, err := DecodeCheckpoint(out)
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-decode: %v", err)
		}
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatal("decode/encode/decode not a fixpoint")
		}
	})
}

// TestControllerResumeEquivalence pins that resuming from a checkpoint
// is indistinguishable from never having stopped: the same mutation
// schedule, run uninterrupted versus reloaded from the journal after
// every single mutation, produces identical step reports and an
// identical final placement.
func TestControllerResumeEquivalence(t *testing.T) {
	schedule := []Mutation{
		{Kind: MutDrain, Node: 2},
		{Kind: MutWeight, Node: 5, Weight: 3},
		{Kind: MutFail, Node: 7},
		{Kind: MutCap, Domain: "rack1", Cap: 5},
		{Kind: MutRestore, Node: 2},
		{Kind: MutDrain, Node: 4},
		{Kind: MutRestore, Node: 7},
		{Kind: MutCap, Domain: "rack1", Cap: 0},
		{Kind: MutRestore, Node: 4},
	}
	type stepOut struct {
		Baseline, Damage int
		Moves            []MoveRecord
		Outcome          Outcome
	}
	runSchedule := func(reload bool) ([]stepOut, [][]int) {
		topo, err := topology.Uniform(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		pl := ringPlacement(t, 8, 3, 12)
		journal := filepath.Join(t.TempDir(), "ck.json")
		mem := NewMemActuator(pl)
		c, err := New(pl, Config{
			Topo: topo, Level: topology.Leaf, S: 2, DFail: 1, MaxMoves: 2,
			Actuator: mem, Journal: journal, Opts: testOpts(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var outs []stepOut
		for _, mut := range schedule {
			if reload {
				// Simulate a restart between every two mutations.
				c, err = Load(journal, mem, testOpts())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.Recover(); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := c.Apply(mut)
			if err != nil {
				t.Fatalf("%s: %v", mut, err)
			}
			outs = append(outs, stepOut{rep.Baseline, rep.Damage, rep.Moves, rep.Outcome})
		}
		final := c.Placement()
		objs := make([][]int, final.B())
		for obj := range objs {
			objs[obj] = final.ReplicaNodes(obj)
		}
		return outs, objs
	}

	straight, finalA := runSchedule(false)
	resumed, finalB := runSchedule(true)
	if !reflect.DeepEqual(straight, resumed) {
		t.Fatalf("resumed run diverged from uninterrupted run:\nstraight: %+v\nresumed:  %+v", straight, resumed)
	}
	if !reflect.DeepEqual(finalA, finalB) {
		t.Fatal("final placements differ between uninterrupted and resumed runs")
	}
}
