//go:build invariants

package controller

import (
	"strings"
	"testing"
)

func ph(p Phase) *Phase { return &p }

func mustPanic(t *testing.T, wantMsg string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", wantMsg)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantMsg) {
			t.Fatalf("panic %v does not mention %q", r, wantMsg)
		}
	}()
	f()
}

func fl(p *Phase) *InFlight {
	if p == nil {
		return nil
	}
	return &InFlight{Phase: *p}
}

func TestInvariantsEnabled(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("InvariantsEnabled = false under the invariants tag")
	}
}

// TestJournalLegalSequence replays one full life of the two-phase
// machine — consume, forward arcs, quiesce, a rollback, a stuck move
// surviving a mutation — through the shadow without tripping it.
func TestJournalLegalSequence(t *testing.T) {
	var st invariantState
	seq := []struct {
		applied int
		phase   *Phase
		prep    string // "+" after this write: PrepareAdd succeeded, etc.
	}{
		{0, nil, ""},                // New
		{1, nil, ""},                // Apply consumes a mutation
		{1, ph(PhaseIntent), ""},    // executeMove starts
		{1, ph(PhasePrepared), "+"}, // PrepareAdd succeeded, journaled
		{1, ph(PhaseAdded), "-"},    // CommitAdd succeeded, journaled
		{1, nil, ""},                // DropOld done, quiesced
		{1, ph(PhaseIntent), ""},    // next move, same step
		{1, nil, ""},                // rolled back (Abort cleared nothing outstanding)
		{2, nil, ""},                // next mutation
		{2, ph(PhaseIntent), ""},
		{2, ph(PhasePrepared), "+"},
		{3, ph(PhasePrepared), ""}, // stuck move survives a consumed mutation
		{3, ph(PhaseAdded), "-"},
		{3, nil, ""},
	}
	for i, s := range seq {
		if s.prep == "+" {
			st.notePrepared()
		}
		st.checkJournal(s.applied, fl(s.phase))
		if s.prep == "-" {
			st.noteCommitted()
		}
		_ = i
	}
}

func TestJournalIllegalTransitions(t *testing.T) {
	t.Run("applied backwards", func(t *testing.T) {
		var st invariantState
		st.checkJournal(2, nil)
		mustPanic(t, "went backwards", func() { st.checkJournal(1, nil) })
	})
	t.Run("skipped phase", func(t *testing.T) {
		var st invariantState
		st.checkJournal(0, fl(ph(PhaseIntent)))
		mustPanic(t, "illegal journal phase transition", func() {
			st.checkJournal(0, fl(ph(PhaseAdded)))
		})
	})
	t.Run("machine moves backward", func(t *testing.T) {
		var st invariantState
		st.init(0, fl(ph(PhaseAdded)))
		mustPanic(t, "illegal journal phase transition", func() {
			st.checkJournal(0, fl(ph(PhasePrepared)))
		})
	})
	t.Run("consume while transitioning", func(t *testing.T) {
		var st invariantState
		st.checkJournal(0, fl(ph(PhaseIntent)))
		mustPanic(t, "consumed a mutation", func() {
			st.checkJournal(1, fl(ph(PhasePrepared)))
		})
	})
	t.Run("prepared copy leak", func(t *testing.T) {
		var st invariantState
		st.checkJournal(0, fl(ph(PhaseIntent)))
		st.notePrepared()
		st.checkJournal(0, fl(ph(PhasePrepared)))
		// Quiescing without Abort or Commit first leaks the copy.
		mustPanic(t, "outstanding prepared copy", func() {
			st.checkJournal(0, nil)
		})
	})
}

// TestLoadSeedsShadow pins the recovery entry points: a checkpoint at
// intent or prepared assumes an outstanding copy until Abort clears
// it; one at added does not (the copy went live at commit).
func TestLoadSeedsShadow(t *testing.T) {
	var st invariantState
	st.init(5, fl(ph(PhasePrepared)))
	if !st.prepared {
		t.Fatal("prepared-phase checkpoint did not assume an outstanding copy")
	}
	st.noteAborted()
	st.checkJournal(5, nil) // rollback arm quiesces cleanly

	st.init(5, fl(ph(PhaseAdded)))
	if st.prepared {
		t.Fatal("added-phase checkpoint wrongly assumed an outstanding copy")
	}
	st.checkJournal(5, nil) // roll-forward arm quiesces cleanly
}
