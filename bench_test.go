// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per figure; see EXPERIMENTS.md for the
// recorded outputs), plus ablation benchmarks for the design choices
// called out in DESIGN.md §5 and micro-benchmarks of the hot primitives.
//
// Run everything:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/capacity"
	"repro/internal/combin"
	"repro/internal/design"
	"repro/internal/experiments"
	"repro/internal/placement"
	"repro/internal/randplace"
	"repro/internal/search"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------------
// One benchmark per paper figure.
// ---------------------------------------------------------------------------

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig2(experiments.Fig2Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig2(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3(experiments.Fig3Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig3(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := experiments.Fig4(nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig4(io.Discard, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig5(experiments.Fig5Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig5(io.Discard, curves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig6(experiments.Fig5Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig5(io.Discard, curves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7(experiments.Fig7Opts{
			Trials: 2,
			Bs:     []int{150, 300},
			Configs: []struct{ N, R, S, KLo, KHi int }{
				{31, 5, 3, 3, 4},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig7(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8(experiments.Fig8Opts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFig8(io.Discard, points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Opts{N: 71})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Opts{N: 257})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{31, 71, 257} {
			cells, err := experiments.Fig10(experiments.Fig10Opts{N: n})
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.RenderFig10(io.Discard, cells); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RenderFig11(io.Discard, experiments.Fig11(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigDomains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.DomainTable(experiments.DomainOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderDomainTable(io.Discard, cells); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1 sweeps the c-competitiveness constants across the
// paper's parameter grid (the analytical content of Theorem 1).
func BenchmarkTheorem1(b *testing.B) {
	sink := 0.0
	for i := 0; i < b.N; i++ {
		for _, n := range []int{31, 71, 257} {
			for r := 2; r <= 5; r++ {
				for s := 1; s <= r; s++ {
					for x := 0; x < s; x++ {
						for k := s; k <= 8; k++ {
							c, alpha, ok := placement.CompetitiveConstants(n, r, s, k, x, 1)
							if ok {
								sink += c + alpha
							}
						}
					}
				}
			}
		}
	}
	if sink == 0 {
		b.Fatal("no competitive constants computed")
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).
// ---------------------------------------------------------------------------

// BenchmarkAblationComboVsSimple quantifies what the DP buys over the
// best single Simple(x, λ): availability bound per unit of work.
func BenchmarkAblationComboVsSimple(b *testing.B) {
	units, err := placement.DefaultUnits(71, 5, 3, false)
	if err != nil {
		b.Fatal(err)
	}
	var comboLB, simpleLB int64
	b.Run("combo-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, lb, err := placement.OptimizeCombo(9600, 5, 3, units)
			if err != nil {
				b.Fatal(err)
			}
			comboLB = lb
		}
	})
	b.Run("best-single-simple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := int64(math.MinInt64)
			for _, u := range units {
				lambda, err := placement.MinimalLambda(9600, u.CapPerMu, u.Mu)
				if err != nil {
					b.Fatal(err)
				}
				if lb := placement.LBAvailSimple(9600, 5, 3, u.X, lambda); lb > best {
					best = lb
				}
			}
			simpleLB = best
		}
	})
	if comboLB < simpleLB {
		b.Fatalf("DP bound %d below best simple %d", comboLB, simpleLB)
	}
	b.ReportMetric(float64(comboLB-simpleLB), "extra-objects-guaranteed")
}

// BenchmarkAblationAdversary compares the three attack engines on the
// same instance (accuracy is asserted, speed is the measurement).
func BenchmarkAblationAdversary(b *testing.B) {
	pl, err := placement.BuildSimple(31, 3, 1, 2, 200, placement.SimpleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const s, k = 2, 3
	exact, err := adversary.Exhaustive(pl, s, k)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adversary.Exhaustive(pl, s, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := adversary.WorstCase(pl, s, k, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != exact.Failed {
				b.Fatalf("B&B %d != exact %d", res.Failed, exact.Failed)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := adversary.Greedy(pl, s, k)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed > exact.Failed {
				b.Fatalf("greedy %d exceeds exact %d", res.Failed, exact.Failed)
			}
		}
	})
}

// BenchmarkAblationDomainAdversary compares the three domain-correlated
// attack engines on the same instance (accuracy asserted, speed
// measured), mirroring BenchmarkAblationAdversary at the rack level.
func BenchmarkAblationDomainAdversary(b *testing.B) {
	pl, err := placement.BuildSimple(31, 3, 1, 2, 200, placement.SimpleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	topo, err := topology.Uniform(31, 10)
	if err != nil {
		b.Fatal(err)
	}
	const s, d = 2, 3
	exact, err := adversary.DomainExhaustive(pl, topo, s, d)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adversary.DomainExhaustive(pl, topo, s, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainWorstCase(pl, topo, s, d, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != exact.Failed {
				b.Fatalf("B&B %d != exact %d", res.Failed, exact.Failed)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainGreedy(pl, topo, s, d)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed > exact.Failed {
				b.Fatalf("greedy %d exceeds exact %d", res.Failed, exact.Failed)
			}
		}
	})
}

// BenchmarkDomainWorstCasePar contrasts the serial and parallel
// whole-domain adversaries on a zones×racks hierarchy with 120 failure
// domains — the scale the parallel fan-out exists for. Damage equality
// with the serial engine is asserted at every worker count (the searches
// are exact, so only wall-clock may differ).
func BenchmarkDomainWorstCasePar(b *testing.B) {
	topo, err := topology.UniformHierarchy(240, 10, 12) // 120 racks in 10 zones
	if err != nil {
		b.Fatal(err)
	}
	pl, err := randplace.Generate(placement.Params{N: 240, B: 600, R: 3, S: 2, K: 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	const s, d = 2, 4
	serial, err := adversary.DomainWorstCase(pl, topo, s, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainWorstCase(pl, topo, s, d, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != serial.Failed {
				b.Fatalf("serial rerun %d != %d", res.Failed, serial.Failed)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var visited int64
			for i := 0; i < b.N; i++ {
				res, err := adversary.DomainWorstCasePar(pl, topo, s, d, 0, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != serial.Failed {
					b.Fatalf("parallel (%d workers) %d != serial %d", workers, res.Failed, serial.Failed)
				}
				visited = res.Visited
			}
			b.ReportMetric(float64(visited), "visited-states")
		})
	}
}

// BenchmarkWeightedWorstCase tracks the weighted adversary on the
// 120-rack instance of BenchmarkDomainWorstCasePar: "unit" runs with an
// explicit all-ones weight vector and must reproduce the unweighted
// engine byte for byte (damage AND visited states — the weights≡1
// acceptance pin, asserted every run), "hot" gives every 16th node
// weight 8 and maximizes lost weight. The visited-states metrics are
// deterministic and guarded by make bench-check.
func BenchmarkWeightedWorstCase(b *testing.B) {
	topo, err := topology.UniformHierarchy(240, 10, 12) // 120 racks in 10 zones
	if err != nil {
		b.Fatal(err)
	}
	pl, err := randplace.Generate(placement.Params{N: 240, B: 600, R: 3, S: 2, K: 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	const s, d = 2, 4
	plain, err := adversary.DomainWorstCase(pl, topo, s, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	ones := make([]int64, pl.B())
	for i := range ones {
		ones[i] = 1
	}
	weights := make([]int, topo.N)
	for i := range weights {
		weights[i] = 1
		if i%16 == 0 {
			weights[i] = 8
		}
	}
	topo.Weights = weights
	hotW, err := placement.ObjectWeights(pl, topo)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unit", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainWorstCaseWith(pl, topo, s, d, adversary.SearchOpts{ObjWeights: ones})
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != plain.Failed || res.Visited != plain.Visited {
				b.Fatalf("unit weights diverge: %+v vs unweighted %+v", res, plain)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
	b.Run("hot", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainWorstCaseWith(pl, topo, s, d, adversary.SearchOpts{ObjWeights: hotW})
			if err != nil {
				b.Fatal(err)
			}
			// Weights >= 1, so the weighted optimum dominates the count
			// optimum (the count-optimal attack already weighs that much).
			if res.Failed < plain.Failed {
				b.Fatalf("weighted damage %d below unweighted %d", res.Failed, plain.Failed)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
}

// zoneConfinedPlacement places each object's r replicas inside one
// random zone — the partition-heavy layout (objects live and die with
// their zone) where the residual-load bound prunes deepest. Real
// clusters produce this shape whenever placement is zone-local.
func zoneConfinedPlacement(b *testing.B, n, objects, r, zones int, seed int64) *placement.Placement {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	pl := placement.NewPlacement(n, r)
	perZone := n / zones
	nodes := make([]int, r)
	for i := 0; i < objects; i++ {
		z := rng.Intn(zones)
		perm := rng.Perm(perZone)
		for j := 0; j < r; j++ {
			nodes[j] = z*perZone + perm[j]
		}
		if err := pl.Add(nodes); err != nil {
			b.Fatal(err)
		}
	}
	return pl
}

// BenchmarkDomainWorstCaseLarge is the ≥500-domain scenario: 1000 nodes
// in 25 zones × 20 racks, a zone-confined placement of 2000 objects,
// exact whole-domain search. Serial and parallel worker counts are
// contrasted (damage equality asserted); visited states are reported so
// BENCH.json tracks the search effort across PRs, independent of the
// host's core count.
func BenchmarkDomainWorstCaseLarge(b *testing.B) {
	topo, err := topology.UniformHierarchy(1000, 25, 20) // 500 racks in 25 zones
	if err != nil {
		b.Fatal(err)
	}
	pl := zoneConfinedPlacement(b, 1000, 2000, 3, 25, 7)
	const s, d = 2, 3
	serial, err := adversary.DomainWorstCase(pl, topo, s, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainWorstCase(pl, topo, s, d, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != serial.Failed {
				b.Fatalf("serial rerun %d != %d", res.Failed, serial.Failed)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
	for _, workers := range []int{4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var visited int64
			for i := 0; i < b.N; i++ {
				res, err := adversary.DomainWorstCasePar(pl, topo, s, d, 0, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != serial.Failed {
					b.Fatalf("parallel (%d workers) %d != serial %d", workers, res.Failed, serial.Failed)
				}
				visited = res.Visited
			}
			b.ReportMetric(float64(visited), "visited-states")
		})
	}
}

// stealSkewInstance builds the starvation scenario for the parallel
// drivers: a hub node hosts a replica of every hot object, so every
// worthwhile attack includes candidate 0 and the whole search lives
// inside the single first=0 top-level branch — the remaining branches
// prune on sight. Top-level sharding hands that one branch to one
// worker and starves the rest; work stealing splits its interior. Hot
// objects pair the hub with a 30-node pool (the real combinatorial
// search), cold objects pad the candidate list with instantly-pruned
// branches. Built directly as a search.HitInstance (the node-level
// adapter's layout: unit hits, candidates by descending load) so the
// benchmark can drive both parallel drivers on identical instances.
func stealSkewInstance(b *testing.B) *search.HitInstance {
	b.Helper()
	const n, hot, cold, poolLo, poolHi, s, k = 240, 400, 200, 1, 20, 2, 5
	rng := rand.New(rand.NewSource(11))
	pl := placement.NewPlacement(n, 3)
	for i := 0; i < hot; i++ {
		a := poolLo + rng.Intn(poolHi-poolLo+1)
		c := poolLo + rng.Intn(poolHi-poolLo+1)
		for c == a {
			c = poolLo + rng.Intn(poolHi-poolLo+1)
		}
		if err := pl.Add([]int{0, a, c}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < cold; i++ {
		perm := rng.Perm(n - poolHi - 1)
		if err := pl.Add([]int{poolHi + 1 + perm[0], poolHi + 1 + perm[1], poolHi + 1 + perm[2]}); err != nil {
			b.Fatal(err)
		}
	}
	perNode := make([][]search.Hit, n)
	for obj := 0; obj < pl.B(); obj++ {
		for _, nd := range pl.ReplicaNodes(obj) {
			perNode[nd] = append(perNode[nd], search.Hit{Obj: int32(obj), C: 1})
		}
	}
	loadsByNode := pl.NodeLoads()
	var candidates []int
	for nd, l := range loadsByNode {
		if l > 0 {
			candidates = append(candidates, nd)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if loadsByNode[candidates[i]] != loadsByNode[candidates[j]] {
			return loadsByNode[candidates[i]] > loadsByNode[candidates[j]]
		}
		return candidates[i] < candidates[j]
	})
	hitLists := make([][]search.Hit, len(candidates))
	loads := make([]int64, len(candidates))
	for i, nd := range candidates {
		hitLists[i] = perNode[nd]
		loads[i] = int64(loadsByNode[nd])
	}
	in := search.NewHitInstance(s, pl.B())
	in.Reinit(k, hitLists, loads)
	return in
}

// BenchmarkStealSkew contrasts the work-stealing driver against the
// deprecated top-level sharding on the skewed-survivor instance at 8
// workers (serial is the scale reference). On a multi-core host the
// wall-clock gap is the headline: sharding degenerates to one busy
// worker here (its ns/op pins to serial, as the single dominant branch
// is one worker's whole shard), while stealing splits that branch's
// interior across all 8 — an expected ≥2x and up to ~8x. On a
// single-core runner the three times coincide and the benchmark instead
// pins the scheduler's overhead (steal ns/op must stay at serial's) and
// its exactness: damage equality is asserted every run, and the
// visited-states metrics are deterministic (the greedy seed is optimal,
// so the incumbent never moves and pruning is schedule-independent —
// steal matches serial exactly; sharding is one lower, its legacy
// driver never charged the root) and tracked by make bench-check.
func BenchmarkStealSkew(b *testing.B) {
	probe := stealSkewInstance(b)
	seed := search.Greedy(probe)
	probe.Reset()
	serial := search.BranchAndBoundWith(probe, seed, search.NewBudget(0), search.BoundResidual)
	newInst := func() (search.Instance, error) { return probe.Clone(), nil }
	b.Run("serial", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res := search.BranchAndBoundWith(probe, seed, search.NewBudget(0), search.BoundResidual)
			if res.Failed != serial.Failed {
				b.Fatalf("serial rerun %d != %d", res.Failed, serial.Failed)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
	b.Run("sharded/workers=8", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res, err := search.BranchAndBoundShardedWith(probe, newInst, seed, search.NewBudget(0), 8, search.BoundResidual)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != serial.Failed {
				b.Fatalf("sharded %d != serial %d", res.Failed, serial.Failed)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
	b.Run("steal/workers=8", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			res, err := search.BranchAndBoundParallelWith(probe, newInst, seed, search.NewBudget(0), 8, search.BoundResidual)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != serial.Failed {
				b.Fatalf("steal %d != serial %d", res.Failed, serial.Failed)
			}
			visited = res.Visited
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
}

// BenchmarkDomainWorstCaseDeep attacks every level of a depth-3
// region→zone→rack tree (5 × 5 × 20 = 500 racks over 1000 nodes, the
// zone-confined placement of the Large benchmark): the level-taking
// engines build their instance from Collapse(level) and run the very
// same search core, so this tracks what each tier of the hierarchy
// costs — the region search is tiny, the rack search is the 500-domain
// case. Damage equality with a direct search on the collapsed topology
// is asserted per level; visited-states is the hardware-independent
// metric BENCH.json tracks.
func BenchmarkDomainWorstCaseDeep(b *testing.B) {
	topo, err := topology.UniformTree(1000, 5, 5, 20) // 5 regions x 25 zones x 500 racks
	if err != nil {
		b.Fatal(err)
	}
	if topo.Levels() != 3 {
		b.Fatalf("Levels = %d, want 3", topo.Levels())
	}
	pl := zoneConfinedPlacement(b, 1000, 2000, 3, 25, 7)
	const s = 2
	cases := []struct {
		name  string
		level int
		d     int
	}{
		{"level=region", 0, 2},
		{"level=zone", 1, 3},
		{"level=rack", 2, 3},
	}
	for _, tc := range cases {
		flat, err := topo.Collapse(tc.level)
		if err != nil {
			b.Fatal(err)
		}
		want, err := adversary.DomainWorstCase(pl, flat, s, tc.d, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			var visited int64
			for i := 0; i < b.N; i++ {
				res, err := adversary.DomainWorstCaseAt(pl, topo, tc.level, s, tc.d, 0)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != want.Failed {
					b.Fatalf("level %d damage %d != collapsed search %d", tc.level, res.Failed, want.Failed)
				}
				visited = res.Visited
			}
			b.ReportMetric(float64(visited), "visited-states")
		})
	}
	// The parallel engine at the expensive (rack) level.
	rackSerial, err := adversary.DomainWorstCaseAt(pl, topo, 2, s, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("level=rack/workers=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := adversary.DomainWorstCaseParAt(pl, topo, 2, s, 3, 0, 8)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed != rackSerial.Failed {
				b.Fatalf("parallel %d != serial %d", res.Failed, rackSerial.Failed)
			}
		}
	})
}

// BenchmarkBoundAblation measures the residual-load pruning bound
// against the static replica-counting baseline (the -bound switch) on
// two instance families over the 500-rack topology:
//
//   - partition: zone-confined objects with s = 1, where failed racks
//     kill whole object groups and the residual discount collapses the
//     search — the case the bound exists for;
//   - uniform: a flat random placement, where deaths are rare along
//     search paths and the two bounds must coincide (the regression
//     guard: residual may cost nothing here).
//
// Damage equality between the bounds is asserted; visited-states is the
// hardware-independent metric BENCH.json tracks.
func BenchmarkBoundAblation(b *testing.B) {
	topo, err := topology.UniformHierarchy(1000, 25, 20) // 500 racks
	if err != nil {
		b.Fatal(err)
	}
	partition := zoneConfinedPlacement(b, 1000, 2000, 3, 25, 7)
	uniform, err := randplace.Generate(placement.Params{N: 1000, B: 2000, R: 3, S: 2, K: 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		pl   *placement.Placement
		s, d int
	}{
		{"partition-s1-d10", partition, 1, 10},
		{"uniform-s2-d3", uniform, 2, 3},
	}
	for _, tc := range cases {
		exact, err := adversary.DomainWorstCaseWith(tc.pl, topo, tc.s, tc.d, adversary.SearchOpts{})
		if err != nil {
			b.Fatal(err)
		}
		for _, bound := range []search.Bound{search.BoundStatic, search.BoundResidual} {
			b.Run(fmt.Sprintf("%s/bound=%s", tc.name, bound), func(b *testing.B) {
				var visited int64
				for i := 0; i < b.N; i++ {
					res, err := adversary.DomainWorstCaseWith(tc.pl, topo, tc.s, tc.d,
						adversary.SearchOpts{Bound: bound})
					if err != nil {
						b.Fatal(err)
					}
					if res.Failed != exact.Failed {
						b.Fatalf("bound=%s damage %d != %d", bound, res.Failed, exact.Failed)
					}
					visited = res.Visited
				}
				b.ReportMetric(float64(visited), "visited-states")
			})
		}
	}
}

// BenchmarkConstrainedWorstCasePar measures the subset-sharded parallel
// constrained adversary against its serial twin.
func BenchmarkConstrainedWorstCasePar(b *testing.B) {
	topo, err := topology.Uniform(60, 12)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := randplace.Generate(placement.Params{N: 60, B: 400, R: 3, S: 2, K: 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	const s, k, d = 2, 4, 2
	serial, err := adversary.ConstrainedWorstCase(pl, topo, s, k, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adversary.ConstrainedWorstCase(pl, topo, s, k, d, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := adversary.ConstrainedWorstCasePar(pl, topo, s, k, d, 0, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != serial.Failed {
					b.Fatalf("parallel %d != serial %d", res.Failed, serial.Failed)
				}
			}
		})
	}
}

// BenchmarkSpreadAcrossDomains measures the domain-aware relabeling
// post-pass (candidate generation plus exact evaluation).
func BenchmarkSpreadAcrossDomains(b *testing.B) {
	pl, err := placement.BuildSimple(31, 3, 1, 2, 200, placement.SimpleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	topo, err := topology.Uniform(31, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := placement.SpreadAcrossDomains(pl, topo, 2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOverlap contrasts the inter-object correlation of the
// combinatorial placement against Random: Simple(x, λ) caps pair
// overlaps at x by construction (the mechanism behind the paper's
// worst-case wins), while Random merely makes big overlaps unlikely.
func BenchmarkAblationOverlap(b *testing.B) {
	const (
		n, r, s, k = 31, 3, 2, 3
		objects    = 150
	)
	units, err := placement.DefaultUnits(n, r, s, true)
	if err != nil {
		b.Fatal(err)
	}
	spec, _, err := placement.OptimizeCombo(objects, k, s, units)
	if err != nil {
		b.Fatal(err)
	}
	combo, err := placement.BuildCombo(n, r, spec, objects, placement.SimpleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	random, err := randplace.Generate(placement.Params{N: n, B: objects, R: r, S: s, K: k}, 5)
	if err != nil {
		b.Fatal(err)
	}
	var comboPairs, randomPairs int64
	b.Run("combo-histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist, err := combo.OverlapHistogram(0, 1)
			if err != nil {
				b.Fatal(err)
			}
			comboPairs = hist[2] + hist[3] // pairs overlapping beyond x = 1
		}
	})
	b.Run("random-histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist, err := random.OverlapHistogram(0, 1)
			if err != nil {
				b.Fatal(err)
			}
			randomPairs = hist[2] + hist[3]
		}
	})
	b.ReportMetric(float64(randomPairs-comboPairs), "extra-high-overlap-pairs-in-random")
}

// BenchmarkAblationVulnEval compares the early-terminating log-space
// binomial tail against full summation.
func BenchmarkAblationVulnEval(b *testing.B) {
	const (
		n = 38400
		f = 600
	)
	logP := math.Log(0.01)
	log1mP := math.Log1p(-0.01)
	b.Run("early-termination", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			combin.LogBinomTailGE(n, f, logP, log1mP)
		}
	})
	b.Run("full-summation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			logSum := math.Inf(-1)
			for x := f; x <= n; x++ {
				logSum = combin.LogSumExp(logSum, combin.LogBinomPMF(n, x, logP, log1mP))
			}
			_ = logSum
		}
	})
}

// BenchmarkAblationChunking measures the capacity benefit of multi-chunk
// decompositions (Observation 2) over the single best order.
func BenchmarkAblationChunking(b *testing.B) {
	orders, err := capacity.AvailableOrders(2, 5, 700, 1)
	if err != nil {
		b.Fatal(err)
	}
	var single, chunked int64
	b.Run("single-chunk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := capacity.BestGap(2, 5, 700, 1, orders)
			if err != nil {
				b.Fatal(err)
			}
			single = g.Achieved
		}
	})
	b.Run("three-chunks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := capacity.BestGap(2, 5, 700, 3, orders)
			if err != nil {
				b.Fatal(err)
			}
			chunked = g.Achieved
		}
	})
	if chunked < single {
		b.Fatalf("chunked capacity %d below single %d", chunked, single)
	}
	b.ReportMetric(float64(chunked-single), "extra-capacity-numerator")
}

// BenchmarkAblationIncremental compares the adversary's incremental
// failure counting against recounting every subset from scratch.
func BenchmarkAblationIncremental(b *testing.B) {
	pl, err := placement.BuildSimple(19, 3, 1, 1, 57, placement.SimpleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const s, k = 2, 3
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adversary.Exhaustive(pl, s, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recount-from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			worst := 0
			combin.ForEachSubset(pl.N, k, func(nodes []int) bool {
				failed := combin.NewBitsetFrom(pl.N, nodes)
				if f := pl.FailedObjects(failed, s); f > worst {
					worst = f
				}
				return true
			})
			if worst == 0 {
				b.Fatal("no damage found")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot primitives.
// ---------------------------------------------------------------------------

func BenchmarkOptimizeComboLargeB(b *testing.B) {
	units, err := placement.DefaultUnits(71, 5, 3, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := placement.OptimizeCombo(38400, 6, 3, units); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrAvailLargeB(b *testing.B) {
	p := placement.Params{N: 257, B: 38400, R: 5, S: 3, K: 6}
	for i := 0; i < b.N; i++ {
		if _, err := randplace.PrAvail(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSimpleSTS69(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := placement.BuildSimple(71, 3, 1, 13, 9600, placement.SimpleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteinerTriple255(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := design.SteinerTriple(255); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpherical65(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := design.Spherical(4, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomPlacement(b *testing.B) {
	p := placement.Params{N: 71, B: 2400, R: 5, S: 3, K: 5}
	for i := 0; i < b.N; i++ {
		if _, err := randplace.Generate(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorstCaseBnB(b *testing.B) {
	pl, err := randplace.Generate(placement.Params{N: 31, B: 600, R: 5, S: 3, K: 4}, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.WorstCase(pl, 3, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// incrementalProbe is one step of the re-plan chain BenchmarkIncrementalMove
// replays: a single-replica move, probed and then reverted.
type incrementalProbe struct {
	obj, from, to int
}

// buildIncrementalProbes derives a deterministic probe chain from the
// partition placement: count moves, every fifth crossing racks, the
// rest intra-rack rebalancing (the common reconciler case — the move
// changes node loads but no failure domain). All moves stay inside the
// object's zone, preserving the zone-confined shape.
func buildIncrementalProbes(b *testing.B, pl *placement.Placement, topo *topology.Topology, zones, count int) []incrementalProbe {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	perZone := pl.N / zones
	probes := make([]incrementalProbe, 0, count)
	for len(probes) < count {
		cross := len(probes)%5 == 4
		obj := rng.Intn(pl.B())
		members := pl.ReplicaNodes(obj)
		from := members[rng.Intn(len(members))]
		zone := from / perZone
		to := zone*perZone + rng.Intn(perZone)
		if to == from || pl.Objects[obj].Get(to) {
			continue
		}
		if cross == (topo.DomainOf(to) == topo.DomainOf(from)) {
			continue
		}
		probes = append(probes, incrementalProbe{obj: obj, from: from, to: to})
	}
	return probes
}

// BenchmarkIncrementalMove contrasts cold and warm evaluation of a
// chain of one-replica re-plans on the partition scenario (the
// zone-confined placement of the Large benchmark): each probe applies
// one move, evaluates the rack-level worst case, then reverts and
// evaluates again — the probe-and-revert loop a placement reconciler
// runs. Cold rebuilds the instance and searches from scratch for every
// evaluation; warm drives one adversary.Session whose CSR move deltas,
// damage memo, and same-domain fast path answer reverts and intra-rack
// probes without searching. The tracked visited-states metric is the
// average per evaluation over the whole chain; the warm chain must
// come in at least 5x under the cold one (asserted when both
// sub-benchmarks run).
func BenchmarkIncrementalMove(b *testing.B) {
	const zones, s, d = 25, 2, 3
	topo, err := topology.UniformHierarchy(1000, zones, 20)
	if err != nil {
		b.Fatal(err)
	}
	pl := zoneConfinedPlacement(b, 1000, 2000, 3, zones, 11)
	probes := buildIncrementalProbes(b, pl, topo, zones, 20)
	// want[i] is the exact damage after probe i's move, recorded by the
	// cold run and pinned against the warm one.
	var want []int
	var coldAvg float64
	b.Run("cold", func(b *testing.B) {
		var total int64
		evals := 0
		for i := 0; i < b.N; i++ {
			total, evals = 0, 0
			want = want[:0]
			cur := pl.Clone()
			base, err := adversary.DomainWorstCase(cur, topo, s, d, 0)
			if err != nil {
				b.Fatal(err)
			}
			total += base.Visited
			evals++
			for _, pr := range probes {
				if err := cur.MoveReplica(pr.obj, pr.from, pr.to); err != nil {
					b.Fatal(err)
				}
				res, err := adversary.DomainWorstCase(cur, topo, s, d, 0)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Visited
				evals++
				want = append(want, res.Failed)
				if err := cur.MoveReplica(pr.obj, pr.to, pr.from); err != nil {
					b.Fatal(err)
				}
				back, err := adversary.DomainWorstCase(cur, topo, s, d, 0)
				if err != nil {
					b.Fatal(err)
				}
				total += back.Visited
				evals++
				if back.Failed != base.Failed {
					b.Fatalf("revert damage %d != base %d", back.Failed, base.Failed)
				}
			}
		}
		coldAvg = float64(total) / float64(evals)
		b.ReportMetric(coldAvg, "visited-states")
	})
	b.Run("warm", func(b *testing.B) {
		var total int64
		evals := 0
		for i := 0; i < b.N; i++ {
			total, evals = 0, 0
			se, err := adversary.NewDomainSession(pl, topo, topology.Leaf, s, d, adversary.SearchOpts{})
			if err != nil {
				b.Fatal(err)
			}
			base, err := se.Evaluate(nil)
			if err != nil {
				b.Fatal(err)
			}
			total += base.Visited
			evals++
			for pi, pr := range probes {
				res, err := se.Move(pr.obj, pr.from, pr.to)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Visited
				evals++
				if len(want) > pi && res.Failed != want[pi] {
					b.Fatalf("probe %d: warm damage %d != cold %d", pi, res.Failed, want[pi])
				}
				back, err := se.Move(pr.obj, pr.to, pr.from)
				if err != nil {
					b.Fatal(err)
				}
				total += back.Visited
				evals++
				if back.Failed != base.Failed {
					b.Fatalf("revert damage %d != base %d", back.Failed, base.Failed)
				}
			}
		}
		warmAvg := float64(total) / float64(evals)
		b.ReportMetric(warmAvg, "visited-states")
		if coldAvg > 0 && warmAvg*5 > coldAvg {
			b.Fatalf("warm chain averaged %.0f visited states per evaluation, cold %.0f — less than the required 5x drop",
				warmAvg, coldAvg)
		}
	})
}

// buildFanoutMoves derives a deterministic batch of distinct cross-rack
// probe candidates from the partition placement — every move changes a
// failure domain, so each probe costs a real warm search rather than
// the same-domain fast path. All moves stay inside the object's zone.
func buildFanoutMoves(b *testing.B, pl *placement.Placement, topo *topology.Topology, zones, count int) []adversary.Move {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	perZone := pl.N / zones
	seen := map[adversary.Move]bool{}
	moves := make([]adversary.Move, 0, count)
	for len(moves) < count {
		obj := rng.Intn(pl.B())
		members := pl.ReplicaNodes(obj)
		from := members[rng.Intn(len(members))]
		zone := from / perZone
		to := zone*perZone + rng.Intn(perZone)
		if to == from || pl.Objects[obj].Get(to) || topo.DomainOf(to) == topo.DomainOf(from) {
			continue
		}
		m := adversary.Move{Obj: obj, From: from, To: to}
		if seen[m] {
			continue
		}
		seen[m] = true
		moves = append(moves, m)
	}
	return moves
}

// BenchmarkProbeFanout measures the parallel probe layer on the
// partition scenario: one warm session evaluates its base placement,
// then a batch of 32 cross-rack candidate moves is probed — serially,
// and fanned out over 8 forked workers sharing the sharded memo. The
// workers=8 sub-benchmark asserts the results are byte-identical to
// the serial scan (per-slot damage and the tracked total visited
// states), and — when the host has more than 2 cores — that the
// fan-out is at least 2x faster per batch.
func BenchmarkProbeFanout(b *testing.B) {
	const zones, s, d, batch = 25, 2, 3, 32
	topo, err := topology.UniformHierarchy(1000, zones, 20)
	if err != nil {
		b.Fatal(err)
	}
	pl := zoneConfinedPlacement(b, 1000, 2000, 3, zones, 11)
	moves := buildFanoutMoves(b, pl, topo, zones, batch)

	// Each iteration probes the batch on a fresh session (the shared
	// memo would otherwise answer everything after the first pass);
	// session setup and the base evaluation run off the timer.
	run := func(b *testing.B, workers int) (damages []int, visited int64, perBatch float64) {
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			se, err := adversary.NewDomainSession(pl, topo, topology.Leaf, s, d, adversary.SearchOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := se.Evaluate(nil); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			start := time.Now()
			results := se.ProbeMoves(moves, workers)
			elapsed += time.Since(start)
			damages = damages[:0]
			visited = 0
			for mi, res := range results {
				if res.Failed < 0 {
					b.Fatalf("probe %d failed to apply", mi)
				}
				damages = append(damages, res.Failed)
				visited += res.Visited
			}
		}
		return damages, visited, float64(elapsed.Nanoseconds()) / float64(b.N)
	}

	var serialDamages []int
	var serialVisited int64
	var serialNs float64
	b.Run("serial", func(b *testing.B) {
		serialDamages, serialVisited, serialNs = run(b, 1)
		b.ReportMetric(float64(serialVisited), "visited-states")
	})
	b.Run("workers=8", func(b *testing.B) {
		damages, visited, parNs := run(b, 8)
		b.ReportMetric(float64(visited), "visited-states")
		if serialDamages != nil {
			if !reflect.DeepEqual(damages, serialDamages) {
				b.Fatalf("workers=8 damages diverge from serial:\n got %v\nwant %v", damages, serialDamages)
			}
			if visited != serialVisited {
				b.Fatalf("workers=8 visited %d states, serial %d — probes are not deterministic", visited, serialVisited)
			}
			if runtime.GOMAXPROCS(0) > 2 {
				if speedup := serialNs / parNs; speedup < 2 {
					b.Fatalf("workers=8 speedup %.2fx over serial, want >= 2x (GOMAXPROCS=%d)",
						speedup, runtime.GOMAXPROCS(0))
				}
			}
		}
	})
}

// BenchmarkProbeMemoHit pins the zero-allocation probe hot path: once
// a probe pair (apply + revert) is memoized, driving it through
// MoveInto with caller-provided result scratch must not allocate — the
// assertion that keeps copyInto/scratch-signature reuse honest.
func BenchmarkProbeMemoHit(b *testing.B) {
	const zones, s, d = 5, 2, 2
	topo, err := topology.UniformHierarchy(100, zones, 4)
	if err != nil {
		b.Fatal(err)
	}
	pl := zoneConfinedPlacement(b, 100, 200, 3, zones, 7)
	se, err := adversary.NewDomainSession(pl, topo, topology.Leaf, s, d, adversary.SearchOpts{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := se.Evaluate(nil); err != nil {
		b.Fatal(err)
	}
	m := buildFanoutMoves(b, pl, topo, zones, 1)[0]
	var dst adversary.SessionResult
	pair := func() {
		if err := se.MoveInto(&dst, m.Obj, m.From, m.To); err != nil {
			b.Fatal(err)
		}
		if err := se.MoveInto(&dst, m.Obj, m.To, m.From); err != nil {
			b.Fatal(err)
		}
	}
	pair() // warm: both placements land in the memo, scratch grows to size
	if allocs := testing.AllocsPerRun(100, pair); allocs > 0 {
		b.Fatalf("memo-hit probe pair allocated %.1f times, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair()
	}
}
