# Developer entry points; CI runs the same targets.

# bash with pipefail so the bench recipe's `go test | tee` pipeline
# fails the target when go test fails, not just when tee does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
BENCHTIME ?= 1x

.PHONY: build vet test test-short bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# bench runs the whole benchmark suite and regenerates the tracked perf
# baseline BENCH.json (see cmd/benchjson): benchmark → ns/op, allocs/op,
# and custom metrics such as the adversary core's visited-states. The
# default BENCHTIME=1x keeps the sweep fast — wall-clock numbers are then
# indicative only, but the visited-states metrics are deterministic, so
# the search-effort trajectory is comparable across machines and PRs.
# Use BENCHTIME=1s for stable timings.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH.json
	@echo wrote BENCH.json
