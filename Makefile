# Developer entry points; CI runs the same targets.

# bash with pipefail so the bench recipe's `go test | tee` pipeline
# fails the target when go test fails, not just when tee does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
BENCHTIME ?= 1x

.PHONY: build vet lint test test-short test-invariants bench bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint builds the project's own analyzer suite (cmd/replicalint: map-range
# determinism, banned nondeterminism sources, lock discipline, exhaustive
# phase switches, blessed journal writer — see README.md "Determinism
# contract") and runs it through go vet's -vettool protocol, so findings
# carry standard vet formatting and exit codes. govulncheck is
# informational only: it needs network access for the vuln DB, so a
# missing binary or a failed fetch must not fail the target.
lint: build
	$(GO) build -o bin/replicalint ./cmd/replicalint
	$(GO) vet -vettool=$(abspath bin/replicalint) ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck: informational, not failing the build"; \
	else \
		echo "govulncheck not installed; skipping (informational only)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-invariants compiles in the //go:build invariants runtime
# assertions (CSR audits after every move in internal/search, the
# journal state-machine shadow in internal/controller) and runs the
# short suite under them. The default build carries none of this.
test-invariants:
	$(GO) test -tags invariants -short ./...

# bench runs the whole benchmark suite and regenerates the tracked perf
# baseline BENCH.json (see cmd/benchjson): benchmark → ns/op, allocs/op,
# and custom metrics such as the adversary core's visited-states. The
# default BENCHTIME=1x keeps the sweep fast — wall-clock numbers are then
# indicative only, but the visited-states metrics are deterministic, so
# the search-effort trajectory is comparable across machines and PRs.
# Use BENCHTIME=1s for stable timings.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH.json
	@echo wrote BENCH.json

# bench-check regenerates a fresh baseline into BENCH.new.json (leaving
# the committed BENCH.json untouched) and fails when any deterministic
# visited-states metric regressed by more than 10% against it — the
# guard CI runs on every push (see cmd/benchcheck). Wall-clock numbers
# are machine-dependent and not checked, so BENCHTIME=1x is fine.
bench-check:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH.new.json
	$(GO) run ./cmd/benchcheck -baseline BENCH.json -new BENCH.new.json
	rm -f BENCH.new.json
