package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkDomainWorstCaseLarge/serial         	       1	 232482502 ns/op	     96547 visited-states
BenchmarkBoundAblation/partition-s1-d7/bound=residual       	       2	   1442990 ns/op	  123456 B/op	     789 allocs/op	      1483 visited-states
BenchmarkFig11-8	     100	    123 ns/op
PASS
ok  	repro	2.119s
pkg: repro/internal/search
BenchmarkSomething-8	      10	  42 ns/op
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.GOOS != "linux" || report.GOARCH != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("header mis-parsed: %+v", report)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(report.Benchmarks))
	}

	large := report.Benchmarks[0]
	if large.Name != "BenchmarkDomainWorstCaseLarge/serial" || large.Package != "repro" {
		t.Errorf("first row: %+v", large)
	}
	if large.Iterations != 1 || large.NsPerOp != 232482502 {
		t.Errorf("first row numbers: %+v", large)
	}
	if large.Metrics["visited-states"] != 96547 {
		t.Errorf("visited-states = %v, want 96547", large.Metrics["visited-states"])
	}

	ablation := report.Benchmarks[1]
	if ablation.AllocsPerOp == nil || *ablation.AllocsPerOp != 789 {
		t.Errorf("allocs_per_op: %+v", ablation.AllocsPerOp)
	}
	if ablation.BytesPerOp == nil || *ablation.BytesPerOp != 123456 {
		t.Errorf("bytes_per_op: %+v", ablation.BytesPerOp)
	}
	if ablation.Metrics["visited-states"] != 1483 {
		t.Errorf("ablation visited-states: %v", ablation.Metrics)
	}

	if report.Benchmarks[2].Metrics != nil || report.Benchmarks[2].AllocsPerOp != nil {
		t.Errorf("plain row should have no extras: %+v", report.Benchmarks[2])
	}
	if report.Benchmarks[3].Package != "repro/internal/search" {
		t.Errorf("pkg header not tracked: %+v", report.Benchmarks[3])
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	report, err := parse(strings.NewReader("BenchmarkFoo\nBenchmarkBar-8 notanint 12 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from junk, want 0", len(report.Benchmarks))
	}
}
