// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable BENCH.json perf baseline on stdout, so every PR can
// record the benchmark trajectory (ns/op, allocs/op, and custom metrics
// like the adversary core's visited-states) as one diffable artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// The parser understands the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs — and keeps every pair:
// ns/op and allocs/op are promoted to top-level fields, everything else
// (B/op, MB/s, visited-states, ...) lands in the metrics map. Header
// lines (goos/goarch/cpu/pkg) annotate the following benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result row.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH.json document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output and collects the result rows.
func parse(r io.Reader) (Report, error) {
	var report Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return Report{}, err
			}
			if ok {
				b.Package = pkg
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one result row: `BenchmarkName-8  N  v1 u1  v2 u2 ...`.
// Non-result lines starting with "Benchmark" (e.g. a bare name echoed by
// -v) report ok = false rather than an error.
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		v := value
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "B/op":
			b.BytesPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true, nil
}
