package main

import (
	"strings"
	"testing"
)

func bench(pkg, name string, visited float64) benchmark {
	return benchmark{Name: name, Package: pkg, Metrics: map[string]float64{"visited-states": visited}}
}

func TestCompare(t *testing.T) {
	baseline := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkA-8", 1000),
		bench("repro", "BenchmarkB-8", 200),
		bench("repro", "BenchmarkGone-8", 50),
		{Name: "BenchmarkNoMetric-8", Package: "repro", Metrics: map[string]float64{"ns/op": 123}},
	}}
	fresh := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkA-8", 1099), // +9.9%: inside tolerance
		bench("repro", "BenchmarkB-8", 260),  // +30%: regression
		bench("repro", "BenchmarkNew-8", 999999),
	}}
	failures, checked := compare(baseline, fresh, "visited-states", 0.10)
	if checked != 3 {
		t.Errorf("checked %d baseline metrics, want 3", checked)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want the +30%% regression and the disappearance", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "BenchmarkB-8") || !strings.Contains(joined, "200 -> 260") {
		t.Errorf("missing the BenchmarkB regression: %v", failures)
	}
	if !strings.Contains(joined, "BenchmarkGone-8") || !strings.Contains(joined, "disappeared") {
		t.Errorf("missing the disappearance failure: %v", failures)
	}
	if strings.Contains(joined, "BenchmarkA-8") || strings.Contains(joined, "BenchmarkNew-8") {
		t.Errorf("within-tolerance or new benchmarks flagged: %v", failures)
	}

	// Identical reports pass; small absolute wiggle on tiny counts
	// stays within the +0.5 guard.
	failures, _ = compare(baseline, baseline, "visited-states", 0.10)
	if len(failures) != 0 {
		t.Errorf("self-comparison failed: %v", failures)
	}
	small := report{Benchmarks: []benchmark{bench("repro", "BenchmarkTiny-8", 4)}}
	smallNow := report{Benchmarks: []benchmark{bench("repro", "BenchmarkTiny-8", 4.4)}}
	if failures, _ = compare(small, smallNow, "visited-states", 0.10); len(failures) != 0 {
		t.Errorf("sub-unit wiggle flagged: %v", failures)
	}
}
