package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadMissingBaseline pins the loud-failure contract: an absent
// baseline is an error (main exits non-zero on it), never a vacuous
// pass.
func TestLoadMissingBaseline(t *testing.T) {
	_, err := load(filepath.Join(t.TempDir(), "BENCH.json"))
	if err == nil {
		t.Fatal("load of a missing baseline returned no error")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("missing baseline error not recognizable as not-exist: %v", err)
	}
}

func bench(pkg, name string, visited float64) benchmark {
	return benchmark{Name: name, Package: pkg, Metrics: map[string]float64{"visited-states": visited}}
}

func TestCompare(t *testing.T) {
	baseline := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkA-8", 1000),
		bench("repro", "BenchmarkB-8", 200),
		bench("repro", "BenchmarkGone-8", 50),
		{Name: "BenchmarkNoMetric-8", Package: "repro", Metrics: map[string]float64{"ns/op": 123}},
	}}
	fresh := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkA-8", 1099), // +9.9%: inside tolerance
		bench("repro", "BenchmarkB-8", 260),  // +30%: regression
		bench("repro", "BenchmarkNew-8", 999999),
	}}
	failures, checked := compare(baseline, fresh, "visited-states", 0.10, 50)
	if checked != 3 {
		t.Errorf("checked %d baseline metrics, want 3", checked)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want the +30%% regression and the disappearance", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "BenchmarkB-8") || !strings.Contains(joined, "200 -> 260") {
		t.Errorf("missing the BenchmarkB regression: %v", failures)
	}
	if !strings.Contains(joined, "BenchmarkGone-8") || !strings.Contains(joined, "disappeared") {
		t.Errorf("missing the disappearance failure: %v", failures)
	}
	if strings.Contains(joined, "BenchmarkA-8") || strings.Contains(joined, "BenchmarkNew-8") {
		t.Errorf("within-tolerance or new benchmarks flagged: %v", failures)
	}

	// Identical reports pass; small absolute wiggle on tiny counts
	// stays within the +0.5 guard.
	failures, _ = compare(baseline, baseline, "visited-states", 0.10, 50)
	if len(failures) != 0 {
		t.Errorf("self-comparison failed: %v", failures)
	}
	small := report{Benchmarks: []benchmark{bench("repro", "BenchmarkTiny-8", 4)}}
	smallNow := report{Benchmarks: []benchmark{bench("repro", "BenchmarkTiny-8", 4.4)}}
	if failures, _ = compare(small, smallNow, "visited-states", 0.10, 0); len(failures) != 0 {
		t.Errorf("sub-unit wiggle flagged: %v", failures)
	}
}

// TestCompareAbsoluteFloor pins the two tolerance regimes. Small
// deterministic counters jitter by a few dozen states (e.g. a budgeted
// parallel race landing ±31 states apart), which a purely relative
// tolerance fails: 250 -> 281 is +12.4%. The absolute floor forgives
// exactly that — and nothing more — while large counters stay governed
// by the relative tolerance alone.
func TestCompareAbsoluteFloor(t *testing.T) {
	baseline := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkSmall-8", 250),
		bench("repro", "BenchmarkBig-8", 100000),
	}}

	// Floor regime: +31 states on a 250-state counter passes with the
	// default floor, fails without it.
	jitter := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkSmall-8", 281),
		bench("repro", "BenchmarkBig-8", 100000),
	}}
	if failures, _ := compare(baseline, jitter, "visited-states", 0.10, 50); len(failures) != 0 {
		t.Errorf("±31-state jitter on a small counter flagged despite the floor: %v", failures)
	}
	if failures, _ := compare(baseline, jitter, "visited-states", 0.10, 0); len(failures) != 1 {
		t.Errorf("without the floor the relative tolerance should flag 250 -> 281: %v", failures)
	}

	// The floor is a floor, not a blank check: exceeding it still fails.
	real := report{Benchmarks: []benchmark{
		bench("repro", "BenchmarkSmall-8", 305),
		bench("repro", "BenchmarkBig-8", 100000),
	}}
	failures, _ := compare(baseline, real, "visited-states", 0.10, 50)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkSmall-8") {
		t.Errorf("a +55-state regression must beat the 50-state floor: %v", failures)
	}

	// Relative regime: on large counters the floor is irrelevant —
	// base*tolerance dominates, so +9% passes and +11% fails with or
	// without it.
	for _, floor := range []float64{0, 50} {
		ok := report{Benchmarks: []benchmark{
			bench("repro", "BenchmarkSmall-8", 250),
			bench("repro", "BenchmarkBig-8", 109000),
		}}
		if failures, _ := compare(baseline, ok, "visited-states", 0.10, floor); len(failures) != 0 {
			t.Errorf("floor %.0f: +9%% on a large counter flagged: %v", floor, failures)
		}
		bad := report{Benchmarks: []benchmark{
			bench("repro", "BenchmarkSmall-8", 250),
			bench("repro", "BenchmarkBig-8", 111000),
		}}
		if failures, _ := compare(baseline, bad, "visited-states", 0.10, floor); len(failures) != 1 {
			t.Errorf("floor %.0f: +11%% on a large counter not flagged: %v", floor, failures)
		}
	}
}
