// Command benchcheck compares a freshly generated BENCH.json against a
// committed baseline and fails on regressions in the DETERMINISTIC
// benchmark metrics — the adversary core's visited-states counters,
// which measure search effort independently of the machine. Wall-clock
// numbers (ns/op) vary with hardware and are deliberately not checked.
//
// A benchmark regresses when its fresh metric exceeds the baseline by
// more than the tolerance (default 10%), and when a baseline benchmark
// disappears entirely (coverage loss is a regression too; intentional
// removals update the committed BENCH.json in the same change). New
// benchmarks absent from the baseline pass — they become tracked once
// the regenerated BENCH.json is committed.
//
// Usage:
//
//	go run ./cmd/benchcheck -baseline BENCH.json -new BENCH.new.json [-tolerance 0.10]
//
// `make bench-check` wires this against the committed baseline; CI runs
// it on every push.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchmark mirrors the cmd/benchjson row shape (only the fields the
// check needs).
type benchmark struct {
	Name    string             `json:"name"`
	Package string             `json:"package"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH.json", "committed baseline BENCH.json")
	newPath := flag.String("new", "BENCH.new.json", "freshly generated BENCH.json")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative increase before a metric counts as regressed")
	metric := flag.String("metric", "visited-states", "deterministic metric to compare")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	failures, checked := compare(baseline, fresh, *metric, *tolerance)
	fmt.Printf("benchcheck: %d %s metrics compared against %s (tolerance %.0f%%)\n",
		checked, *metric, *baselinePath, *tolerance*100)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchcheck: REGRESSION:", f)
		}
		os.Exit(1)
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline has no %s metrics — nothing was checked\n", *metric)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}

func load(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// key identifies a benchmark row across reports.
func key(b benchmark) string { return b.Package + " " + b.Name }

// compare returns the regression messages (stable order) and the number
// of baseline metrics that were compared.
func compare(baseline, fresh report, metric string, tolerance float64) ([]string, int) {
	freshVals := make(map[string]float64)
	for _, b := range fresh.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			freshVals[key(b)] = v
		}
	}
	var failures []string
	checked := 0
	for _, b := range baseline.Benchmarks {
		base, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		checked++
		now, ok := freshVals[key(b)]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: %s metric disappeared (baseline %.0f); update BENCH.json if the benchmark was intentionally removed",
					key(b), metric, base))
			continue
		}
		if now > base*(1+tolerance)+0.5 {
			failures = append(failures,
				fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
					key(b), metric, base, now, 100*(now-base)/base, tolerance*100))
		}
	}
	sort.Strings(failures)
	return failures, checked
}
