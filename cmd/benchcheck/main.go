// Command benchcheck compares a freshly generated BENCH.json against a
// committed baseline and fails on regressions in the DETERMINISTIC
// benchmark metrics — the adversary core's visited-states counters,
// which measure search effort independently of the machine. Wall-clock
// numbers (ns/op) vary with hardware and are deliberately not checked.
//
// A benchmark regresses when its fresh metric exceeds the baseline by
// more than the allowed slack — max(relative tolerance, absolute
// floor) — and when a baseline benchmark disappears entirely (coverage
// loss is a regression too; intentional removals update the committed
// BENCH.json in the same change). New benchmarks absent from the
// baseline pass — they become tracked once the regenerated BENCH.json
// is committed.
//
// The absolute floor (-min-delta, default 50 states) exists for small
// deterministic counters: a purely relative tolerance turns a ±31-state
// wobble on a 300-state benchmark into a failure even though the same
// wobble is noise on every larger one. Tiny counters get a fixed grace
// of min-delta states; large counters are still held to the relative
// tolerance, which dominates once base*tolerance > min-delta.
//
// Usage:
//
//	go run ./cmd/benchcheck -baseline BENCH.json -new BENCH.new.json [-tolerance 0.10] [-min-delta 50]
//
// `make bench-check` wires this against the committed baseline; CI runs
// it on every push.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchmark mirrors the cmd/benchjson row shape (only the fields the
// check needs).
type benchmark struct {
	Name    string             `json:"name"`
	Package string             `json:"package"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH.json", "committed baseline BENCH.json")
	newPath := flag.String("new", "BENCH.new.json", "freshly generated BENCH.json")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative increase before a metric counts as regressed")
	minDelta := flag.Float64("min-delta", 50, "absolute increase always allowed, so small counters aren't failed on jitter the relative tolerance forgives everywhere else")
	metric := flag.String("metric", "visited-states", "deterministic metric to compare")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchcheck: baseline %s does not exist — nothing to diff against, failing rather than passing vacuously (run `make bench` and commit %s to establish one)\n",
				*baselinePath, *baselinePath)
		} else {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
		}
		os.Exit(1)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	failures, checked := compare(baseline, fresh, *metric, *tolerance, *minDelta)
	fmt.Printf("benchcheck: %d %s metrics compared against %s (tolerance %.0f%%, floor %.0f)\n",
		checked, *metric, *baselinePath, *tolerance*100, *minDelta)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchcheck: REGRESSION:", f)
		}
		os.Exit(1)
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline has no %s metrics — nothing was checked\n", *metric)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}

func load(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// key identifies a benchmark row across reports.
func key(b benchmark) string { return b.Package + " " + b.Name }

// compare returns the regression messages (stable order) and the number
// of baseline metrics that were compared. A metric regresses when it
// exceeds the baseline by more than max(base*tolerance, minDelta): the
// relative tolerance governs large counters, the absolute floor keeps
// small deterministic counters from failing on jitter that would be
// invisible at scale.
func compare(baseline, fresh report, metric string, tolerance, minDelta float64) ([]string, int) {
	freshVals := make(map[string]float64)
	for _, b := range fresh.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			freshVals[key(b)] = v
		}
	}
	var failures []string
	checked := 0
	for _, b := range baseline.Benchmarks {
		base, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		checked++
		now, ok := freshVals[key(b)]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: %s metric disappeared (baseline %.0f); update BENCH.json if the benchmark was intentionally removed",
					key(b), metric, base))
			continue
		}
		slack := base * tolerance
		if minDelta > slack {
			slack = minDelta
		}
		if now > base+slack+0.5 {
			failures = append(failures,
				fmt.Sprintf("%s: %s %.0f -> %.0f (+%.1f%%, allowed +%.0f)",
					key(b), metric, base, now, 100*(now-base)/base, slack))
		}
	}
	sort.Strings(failures)
	return failures, checked
}
