package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/randplace"
	"repro/internal/search"
	"repro/internal/topology"
)

// cmdPlan runs the DP and prints the chosen ⟨λx⟩ with its guarantee.
func cmdPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	mf := addModelFlags(fs)
	tf := addTopologyFlags(fs, 0)
	workers := addWorkersFlag(fs, 1)
	probeWorkers := addProbeWorkersFlag(fs)
	boundFlag := addBoundFlag(fs)
	stats := addStatsFlag(fs)
	constructible := fs.Bool("constructible", false,
		"restrict to Steiner systems this binary can materialize")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.validate(fs); err != nil {
		return err
	}
	pruneBound, err := search.ParseBound(*boundFlag)
	if err != nil {
		return err
	}
	p := placement.Params{N: mf.n, B: mf.b, R: mf.r, S: mf.s, K: mf.k}
	if err := p.Validate(); err != nil {
		return err
	}
	units, err := placement.DefaultUnits(mf.n, mf.r, mf.s, *constructible)
	if err != nil {
		return err
	}
	spec, bound, err := placement.OptimizeCombo(mf.b, mf.k, mf.s, units)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parameters: n=%d r=%d s=%d k=%d b=%d\n", mf.n, mf.r, mf.s, mf.k, mf.b)
	for x, lambda := range spec.Lambdas {
		u := spec.Units[x]
		fmt.Fprintf(w, "  Simple(x=%d): lambda=%-4d mu=%d capacity/mu=%d\n",
			x, lambda, u.Mu, u.CapPerMu)
	}
	fmt.Fprintf(w, "capacity: %d objects\n", spec.Capacity())
	fmt.Fprintf(w, "guaranteed available under any %d failures: %d of %d (%.2f%%)\n",
		mf.k, bound, mf.b, 100*float64(bound)/float64(mf.b))
	pr, err := randplace.PrAvailTable(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random placement, probably available:        %d of %d (%.2f%%)\n",
		pr, mf.b, 100*float64(pr)/float64(mf.b))
	if tf.enabled() {
		return planTopologySection(w, mf, tf, adversary.SearchOpts{
			Workers: cliWorkers(*workers),
			Bound:   pruneBound,
		}, *stats, *probeWorkers)
	}
	return nil
}

// planTopologySection extends plan with the correlated-failure picture:
// it materializes the constructible Combo, applies the domain-aware
// spreading pass, and measures availability under dfail whole-domain
// failures at the chosen topology level for both layouts.
func planTopologySection(w io.Writer, mf *modelFlags, tf *topologyFlags, opts adversary.SearchOpts, stats bool, probeWorkers int) error {
	topo, err := tf.build(mf.n)
	if err != nil {
		return err
	}
	combo, spec, _, err := placement.BuildDefaultCombo(mf.n, mf.r, mf.s, mf.k, mf.b)
	if err != nil {
		return err
	}
	// Weighted topologies are spread weighted-aware; capped ones (cap=
	// annotations or -caps) are spread under their caps — an infeasible
	// cap set surfaces the checker's certificate as this error.
	var spreadTel placement.SpreadTelemetry
	aware, _, err := placement.SpreadAcrossDomainsWith(combo, topo, mf.s, tf.dfail,
		placement.SpreadOpts{Weighted: topo.Weighted(), Telemetry: &spreadTel, ProbeWorkers: probeWorkers})
	if err != nil {
		return err
	}
	nd, word, dl, err := levelDomains(topo, tf.level, tf.dfail)
	if err != nil {
		return err
	}
	oblivious, err := adversary.DomainWorstCaseAtWith(combo, topo, tf.level, mf.s, dl, opts)
	if err != nil {
		return err
	}
	spread, err := adversary.DomainWorstCaseAtWith(aware, topo, tf.level, mf.s, dl, opts)
	if err != nil {
		return err
	}
	// The analytic section above may have planned with non-constructible
	// units; this section always measures a constructible materialization,
	// so name its lambdas to keep the output self-describing. Flat
	// topologies keep the historical header; trees name the attacked
	// level.
	levelNote := ""
	if topo.Levels() > 1 {
		levelNote = fmt.Sprintf(" %ss", word)
	}
	fmt.Fprintf(w, "failure domains (%d%s): measured on constructible combo (lambdas %v) under any %d whole-domain failures:\n",
		nd, levelNote, spec.Lambdas, dl)
	fmt.Fprintf(w, "  domain-oblivious combo:                    %d of %d (%.2f%%)\n",
		oblivious.Avail(mf.b), mf.b, 100*float64(oblivious.Avail(mf.b))/float64(mf.b))
	if stats {
		fmt.Fprint(w, statsLine("domain-oblivious", opts.Bound, oblivious.Visited, opts.Budget, oblivious.Exact))
	}
	fmt.Fprintf(w, "  domain-aware combo (spread post-pass):     %d of %d (%.2f%%)\n",
		spread.Avail(mf.b), mf.b, 100*float64(spread.Avail(mf.b))/float64(mf.b))
	if stats {
		fmt.Fprint(w, statsLine("domain-aware", opts.Bound, spread.Visited, opts.Budget, spread.Exact))
		fmt.Fprint(w, spreadStatsLine(spreadTel))
	}
	if topo.Weighted() {
		if err := weightedDomainSection(w, topo, tf.level, mf.s, dl, opts,
			[]namedLayout{{"domain-oblivious", combo}, {"domain-aware", aware}}); err != nil {
			return err
		}
	}
	return nil
}

// namedLayout pairs a placement with its display name for the weighted
// sections.
type namedLayout struct {
	name string
	pl   *placement.Placement
}

// weightedDomainSection prints the lost-weight picture of the same
// whole-domain attack for each layout: the adversary maximizes the
// failed objects' total weight (objects inherit their hottest replica
// host's weight), so hot-node topologies expose risk the plain object
// count hides.
func weightedDomainSection(w io.Writer, topo *topology.Topology, level, s, dl int,
	opts adversary.SearchOpts, layouts []namedLayout) error {
	fmt.Fprintf(w, "  weighted (node weights set; adversary maximizes lost weight):\n")
	for _, layout := range layouts {
		objW, err := placement.ObjectWeights(layout.pl, topo)
		if err != nil {
			return err
		}
		wOpts := opts
		wOpts.ObjWeights = objW
		res, err := adversary.DomainWorstCaseAtWith(layout.pl, topo, level, s, dl, wOpts)
		if err != nil {
			return err
		}
		total := placement.SumWeights(objW, layout.pl.B())
		fmt.Fprintf(w, "    %-24s loses weight %d of %d (%.2f%% survives)\n",
			layout.name+":", res.Failed, total, 100*float64(total-int64(res.Failed))/float64(total))
	}
	return nil
}

// cmdPlace materializes a placement and writes it as JSON.
func cmdPlace(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("place", flag.ContinueOnError)
	mf := addModelFlags(fs)
	out := fs.String("out", "", "output file (default stdout)")
	strategy := fs.String("strategy", "combo", "combo | random")
	seed := fs.Int64("seed", 1, "seed for random strategy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := placement.Params{N: mf.n, B: mf.b, R: mf.r, S: mf.s, K: mf.k}
	if err := p.Validate(); err != nil {
		return err
	}
	var (
		pl  *placement.Placement
		err error
	)
	switch *strategy {
	case "combo":
		units, uerr := placement.DefaultUnits(mf.n, mf.r, mf.s, true)
		if uerr != nil {
			return uerr
		}
		spec, _, oerr := placement.OptimizeCombo(mf.b, mf.k, mf.s, units)
		if oerr != nil {
			return oerr
		}
		pl, err = placement.BuildCombo(mf.n, mf.r, spec, mf.b, placement.SimpleOptions{})
	case "random":
		pl, err = randplace.Generate(p, *seed)
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if err != nil {
		return err
	}
	dst := w
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		dst = f
	}
	return pl.EncodeJSON(dst)
}

// cmdAttack loads a placement and finds its worst k failures; with a
// topology (-racks or -topo) it also reports the worst correlated
// whole-domain failure at the chosen -level.
func cmdAttack(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	in := fs.String("in", "", "placement JSON file (required)")
	s := fs.Int("s", 2, "replica failures that fail an object")
	k := fs.Int("k", 4, "node failures")
	budget := fs.Int64("budget", 0, "branch-and-bound node budget (0 = exact)")
	boundFlag := addBoundFlag(fs)
	tf := addTopologyFlags(fs, 0)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("attack: -in is required")
	}
	if err := tf.validate(fs); err != nil {
		return err
	}
	bound, err := search.ParseBound(*boundFlag)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	pl, err := placement.DecodeJSON(f)
	if err != nil {
		return err
	}
	res, err := adversary.WorstCaseWith(pl, *s, *k, adversary.SearchOpts{Budget: *budget, Bound: bound})
	if err != nil {
		return err
	}
	mode := "exact"
	if !res.Exact {
		mode = "lower bound (budget exhausted)"
	}
	fmt.Fprintf(w, "objects: %d, worst %d-node failure fails %d objects (%s)\n",
		pl.B(), *k, res.Failed, mode)
	fmt.Fprintf(w, "failed nodes: %v\n", res.Nodes)
	fmt.Fprintf(w, "Avail = %d (%.2f%%), search visited %d states (bound=%s)\n",
		res.Avail(pl.B()), 100*float64(res.Avail(pl.B()))/float64(pl.B()), res.Visited, bound)
	if !tf.enabled() {
		return nil
	}
	topo, err := tf.build(pl.N)
	if err != nil {
		return err
	}
	_, word, dl, err := levelDomains(topo, tf.level, tf.dfail)
	if err != nil {
		return err
	}
	dres, err := adversary.DomainWorstCaseAtWith(pl, topo, tf.level, *s, dl, adversary.SearchOpts{Budget: *budget, Bound: bound})
	if err != nil {
		return err
	}
	dmode := "exact"
	if !dres.Exact {
		dmode = "lower bound (budget exhausted)"
	}
	fmt.Fprintf(w, "correlated: worst %d-%s failure %v fails %d objects (%s)\n",
		dl, word, topo.DomainNamesAt(tf.level, dres.Domains), dres.Failed, dmode)
	fmt.Fprintf(w, "correlated Avail = %d (%.2f%%), search visited %d states\n",
		dres.Avail(pl.B()), 100*float64(dres.Avail(pl.B()))/float64(pl.B()), dres.Visited)
	if topo.Weighted() {
		objW, err := placement.ObjectWeights(pl, topo)
		if err != nil {
			return err
		}
		wres, err := adversary.DomainWorstCaseAtWith(pl, topo, tf.level, *s, dl,
			adversary.SearchOpts{Budget: *budget, Bound: bound, ObjWeights: objW})
		if err != nil {
			return err
		}
		total := placement.SumWeights(objW, pl.B())
		fmt.Fprintf(w, "weighted correlated: worst %d-%s failure %v loses weight %d of %d\n",
			dl, word, topo.DomainNamesAt(tf.level, wres.Domains), wres.Failed, total)
	}
	return nil
}

// cmdAnalyze prints the analytic picture for one parameter point.
func cmdAnalyze(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	mf := addModelFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := placement.Params{N: mf.n, B: mf.b, R: mf.r, S: mf.s, K: mf.k}
	if err := p.Validate(); err != nil {
		return err
	}
	units, err := placement.DefaultUnits(mf.n, mf.r, mf.s, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parameters: n=%d r=%d s=%d k=%d b=%d (load cap %d)\n",
		mf.n, mf.r, mf.s, mf.k, mf.b, p.Load())
	fmt.Fprintln(w, "\nper-x Simple placements (minimal lambda per Eqn. 1):")
	for _, u := range units {
		lambda, lerr := placement.MinimalLambda(int64(mf.b), u.CapPerMu, u.Mu)
		if lerr != nil {
			return lerr
		}
		lb := placement.LBAvailSimple(int64(mf.b), mf.k, mf.s, u.X, lambda)
		fmt.Fprintf(w, "  x=%d: lambda=%-5d lbAvail_si=%d\n", u.X, lambda, lb)
		if c, alpha, ok := competitive(u, mf); ok {
			fmt.Fprintf(w, "        c-competitive: Avail(any π') < %.4f·Avail(π) + %.2f\n", c, alpha)
		}
	}
	_, bound, err := placement.OptimizeCombo(mf.b, mf.k, mf.s, units)
	if err != nil {
		return err
	}
	pr, err := randplace.PrAvailTable(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nCombo (optimized):  lbAvail_co = %d\n", bound)
	fmt.Fprintf(w, "Random (analysis):  prAvail    = %d\n", pr)
	if int64(mf.b) > int64(pr) {
		improvement := float64(bound-int64(pr)) / float64(int64(mf.b)-int64(pr)) * 100
		fmt.Fprintf(w, "Combo preserves %.0f%% of the objects that probably fail under Random\n",
			improvement)
	}
	if mf.s == 1 {
		fmt.Fprintf(w, "Lemma 4 bound (s=1): prAvail <= %.1f\n", randplace.Lemma4Bound(p))
	}
	return nil
}

func competitive(u placement.Unit, mf *modelFlags) (float64, float64, bool) {
	// Reconstruct n_x from the capacity unit is not possible in general;
	// use n (conservative: c for n_x <= n is larger, so this understates
	// the guarantee only when chunking was used).
	return placement.CompetitiveConstants(mf.n, mf.r, mf.s, mf.k, u.X, u.Mu)
}
