package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPlan(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"plan", "-n", "71", "-r", "3", "-s", "2", "-k", "4", "-b", "600"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"guaranteed available", "594 of 600", "random placement"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlaceAndAttack(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "placement.json")
	var buf bytes.Buffer
	err := run([]string{"place", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-out", file}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("placement file not written: %v", err)
	}
	buf.Reset()
	err = run([]string{"attack", "-in", file, "-s", "2", "-k", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"objects: 26", "Avail =", "exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("attack output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlaceRandomStrategy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"place", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-strategy", "random"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"objects"`) {
		t.Error("random place did not emit JSON")
	}
}

func TestRunAnalyze(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"analyze", "-n", "31", "-r", "5", "-s", "3", "-k", "5", "-b", "1200"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Combo (optimized)", "Random (analysis)", "c-competitive"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentSmall(t *testing.T) {
	// Figures 3, 4 and 11 are cheap end to end.
	for _, fig := range []string{"3", "4", "11"} {
		var buf bytes.Buffer
		if err := run([]string{"experiment", "-fig", fig}, &buf); err != nil {
			t.Fatalf("experiment -fig %s: %v", fig, err)
		}
		if buf.Len() == 0 {
			t.Errorf("experiment -fig %s produced no output", fig)
		}
	}
}

func TestRunCompare(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "2", "-budget", "0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"combo placement", "random placements", "verdict", "overlap histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerify(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "p.json")
	var buf bytes.Buffer
	err := run([]string{"place", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-out", file}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	// The combo placement at b = 26 on STS(13) is Simple(1, 1).
	if err := run([]string{"verify", "-in", file, "-x", "1", "-lambda", "1"}, &buf); err != nil {
		t.Fatalf("verify: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "SATISFIED") {
		t.Errorf("verify output:\n%s", buf.String())
	}
	// λ = 0 must be reported as violated.
	buf.Reset()
	if err := run([]string{"verify", "-in", file, "-x", "1", "-lambda", "0"}, &buf); err == nil {
		t.Error("verify with λ=0 should fail")
	}
	if err := run([]string{"verify"}, &buf); err == nil {
		t.Error("verify without -in should fail")
	}
}

func TestRunTopology(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"topology", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "8",
		"-racks", "3", "-dfail", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"topology: 12 nodes, 3 domains", "domain-oblivious",
		"domain-aware", "node adversary", "constrained adversary"} {
		if !strings.Contains(out, want) {
			t.Errorf("topology output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTopologyZoned(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"topology", "-n", "24", "-r", "3", "-s", "2", "-k", "3", "-b", "40",
		"-racks", "6", "-zones", "3", "-dfail", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(3 zones > 6 racks)", "per-level worst case",
		"level 0 (3 zones)", "level 1 (6 racks)"} {
		if !strings.Contains(out, want) {
			t.Errorf("zoned topology output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTopoLevelFlags drives the depth-3 path end to end: an explicit
// -topo spec, -level aiming the adversary at each tier, and the attack
// subcommand's correlated section.
func TestRunTopoLevelFlags(t *testing.T) {
	const spec = "r0@za@east:0-2;r1@zb@east:3-5;r2@zc@west:6-8;r3@zd@west:9-11"
	var buf bytes.Buffer
	err := run([]string{"topology", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "8",
		"-topo", spec, "-level", "0", "-dfail", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(2 regions > 4 zones > 4 racks)", "worst 1-region failure",
		"level 2 (4 racks)"} {
		if !strings.Contains(out, want) {
			t.Errorf("-topo -level topology output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	err = run([]string{"plan", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "16",
		"-topo", spec, "-level", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "failure domains (4 zones)") {
		t.Errorf("plan -topo -level output missing zone header:\n%s", buf.String())
	}
	// attack: correlated section rides on the loaded placement's n.
	dir := t.TempDir()
	file := filepath.Join(dir, "p.json")
	buf.Reset()
	if err := run([]string{"place", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "16",
		"-out", file}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run([]string{"attack", "-in", file, "-s", "2", "-k", "6", "-topo", spec, "-level", "0"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "correlated: worst 1-region failure") {
		t.Errorf("attack -topo output missing correlated section:\n%s", buf.String())
	}
}

func TestRunPlanWithRacks(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-racks", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"failure domains (4)", "domain-oblivious combo", "domain-aware combo"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan -racks output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareWithRacks(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "1", "-budget", "0", "-racks", "4", "-dfail", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"domain adversary (4 racks", "combo, domain-aware", "random placement"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare -racks output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentDomains(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment", "-fig", "domains"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Avail(rack,d) aware") {
		t.Error("domains experiment output missing header")
	}
}

func TestRunExperimentFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"experiment", "-fig", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "prAvail_rnd/b") {
		t.Error("fig 8 output missing header")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"attack"}, &buf); err == nil {
		t.Error("attack without -in accepted")
	}
	if err := run([]string{"experiment", "-fig", "99"}, &buf); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"plan", "-n", "0"}, &buf); err == nil {
		t.Error("invalid parameters accepted")
	}
	if err := run([]string{"place", "-strategy", "bogus"}, &buf); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"help"}, &buf); err != nil {
		t.Errorf("help failed: %v", err)
	}
	if err := run([]string{"topology", "-n", "13", "-racks", "20"}, &buf); err == nil {
		t.Error("more racks than nodes accepted")
	}
	if err := run([]string{"topology", "-n", "24", "-racks", "5", "-zones", "2"}, &buf); err == nil {
		t.Error("racks not divisible by zones accepted")
	}
	if err := run([]string{"plan", "-racks", "-1"}, &buf); err == nil {
		t.Error("negative racks accepted")
	}
	if err := run([]string{"plan", "-zones", "2"}, &buf); err == nil {
		t.Error("-zones without -racks accepted")
	}
	if err := run([]string{"compare", "-dfail", "2"}, &buf); err == nil {
		t.Error("-dfail without -racks accepted")
	}
	if err := run([]string{"plan", "-level", "0"}, &buf); err == nil {
		t.Error("-level without a topology accepted")
	}
	if err := run([]string{"plan", "-racks", "4", "-topo", "a:0-70"}, &buf); err == nil {
		t.Error("-topo together with -racks accepted")
	}
	if err := run([]string{"topology", "-n", "12", "-topo", "a:0-11", "-level", "3"}, &buf); err == nil {
		t.Error("-level beyond the spec's depth accepted")
	}
	if err := run([]string{"topology", "-n", "12", "-topo", "nonsense"}, &buf); err == nil {
		t.Error("malformed -topo accepted")
	}
}
