package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/adversary"
	"repro/internal/controller"
	"repro/internal/placement"
	"repro/internal/search"
)

// cmdReconcile runs the continuous-operation loop: plan (or resume) a
// placement, then consume a mutation script step by step, moving at
// most -k replicas per step under the never-degrade invariant and
// printing the per-move actuation transcript. The data plane is
// simulated in memory; -seed turns on deterministic fault injection so
// rollback and degradation paths are reproducible from the command
// line.
func cmdReconcile(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("reconcile", flag.ContinueOnError)
	n := fs.Int("n", 24, "number of nodes")
	r := fs.Int("r", 3, "replicas per object")
	s := fs.Int("s", 2, "replica failures that fail an object")
	b := fs.Int("b", 40, "number of objects")
	k := fs.Int("k", 2, "replica-move budget per reconcile step")
	planK := fs.Int("plan-k", 4, "worst-case node failures the initial placement is planned for (see plan -k)")
	tf := addTopologyFlags(fs, 0)
	workers := addWorkersFlag(fs, 1)
	probeWorkers := addProbeWorkersFlag(fs)
	boundFlag := addBoundFlag(fs)
	script := fs.String("script", "", "mutation script (- = stdin): drain|fail|restore <node>, weight <node> <w>, cap <domain> <n>")
	checkpoint := fs.String("checkpoint", "", "write-ahead journal path (fsync'd): every phase transition checkpoints here")
	resume := fs.Bool("resume", false, "resume from -checkpoint (recovering any in-flight move) instead of planning fresh")
	seed := fs.Int64("seed", 0, "fault-injection seed for the simulated data plane (0 = healthy)")
	failRate := fs.Float64("fail-rate", 0.3, "injected per-call failure probability (only with -seed)")
	retries := fs.Int("retries", 2, "actuation retries per call")
	settle := fs.Int("settle", 20, "extra steps after the script to settle leftover work (0 = stop at the script's end)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.validate(fs); err != nil {
		return err
	}
	if !tf.enabled() {
		return fmt.Errorf("reconcile needs a failure topology: set -racks (optionally -zones) or -topo")
	}
	if *script == "" {
		return fmt.Errorf("reconcile needs -script (a mutation file, or - for stdin)")
	}
	pruneBound, err := search.ParseBound(*boundFlag)
	if err != nil {
		return err
	}
	topo, err := tf.build(*n)
	if err != nil {
		return err
	}
	_, word, dl, err := levelDomains(topo, tf.level, tf.dfail)
	if err != nil {
		return err
	}

	var rd io.Reader = os.Stdin
	if *script != "-" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	muts, err := controller.ParseScript(rd)
	if err != nil {
		return err
	}

	opts := controller.Options{
		Retries:      *retries,
		ProbeWorkers: *probeWorkers,
		Search: adversary.SearchOpts{
			Workers: cliWorkers(*workers),
			Bound:   pruneBound,
		},
	}

	var ctrl *controller.Controller
	if *resume {
		if *checkpoint == "" {
			return fmt.Errorf("-resume needs -checkpoint")
		}
		// The simulated data plane is rebuilt from the journaled logical
		// placement; Recover below resolves the in-flight move against it
		// (Abort and DropOld are idempotent, so an already-converged data
		// plane is fine too).
		ck, err := controller.LoadCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		pl := placement.NewPlacement(ck.N, ck.R)
		for _, nodes := range ck.Objects {
			if err := pl.Add(nodes); err != nil {
				return err
			}
		}
		ctrl, err = controller.Load(*checkpoint, wrapActuator(controller.NewMemActuator(pl), *seed, *failRate), opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reconcile: resumed from %s (%d mutations already applied)\n", *checkpoint, ctrl.Applied())
		rep, err := ctrl.Recover()
		if err != nil {
			return err
		}
		if len(rep.Moves) > 0 {
			printReconcileStep(w, "recovery:", rep)
		}
	} else {
		combo, _, _, err := placement.BuildDefaultCombo(*n, *r, *s, *planK, *b)
		if err != nil {
			return err
		}
		pl, _, err := placement.SpreadAcrossDomainsWith(combo, topo, *s, tf.dfail,
			placement.SpreadOpts{Weighted: topo.Weighted()})
		if err != nil {
			return err
		}
		ctrl, err = controller.New(pl, controller.Config{
			Topo:     topo,
			Level:    tf.level,
			S:        *s,
			DFail:    dl,
			MaxMoves: *k,
			Actuator: wrapActuator(controller.NewMemActuator(pl), *seed, *failRate),
			Journal:  *checkpoint,
			Opts:     opts,
		})
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "reconcile: n=%d r=%d s=%d b=%d | %d whole-%s failures | budget %d moves/step\n",
		*n, *r, *s, *b, dl, word, *k)
	fmt.Fprintf(w, "pre-migration guarantee: worst-case damage %d of %d objects\n",
		ctrl.Checkpoint().Baseline, *b)

	var last *controller.StepReport
	for i, mut := range muts {
		rep, err := ctrl.Apply(mut)
		if err != nil {
			return fmt.Errorf("step %d (%s): %w", i+1, mut, err)
		}
		printReconcileStep(w, fmt.Sprintf("step %d: %s", i+1, mut), rep)
		last = rep
	}
	if *settle > 0 && last != nil && last.Outcome != controller.OutcomeClean {
		for i := 1; i <= *settle; i++ {
			rep, err := ctrl.Step()
			if err != nil {
				return fmt.Errorf("settle %d: %w", i, err)
			}
			printReconcileStep(w, fmt.Sprintf("settle %d:", i), rep)
			last = rep
			if rep.Outcome == controller.OutcomeClean || rep.Outcome == controller.OutcomeDegradedUnsafe {
				break
			}
		}
	}
	if last != nil {
		fmt.Fprintf(w, "final: %s — damage %d (guarantee was %d), at-risk %d, cap-excess %d\n",
			last.Outcome, last.Damage, ctrl.Checkpoint().Baseline, last.AtRisk, last.CapExcess)
	}
	st := ctrl.SessionStats()
	fmt.Fprintf(w, "session stats: evals=%d memo-hits=%d warm-seeds=%d rebuilds=%d forks=%d batch-probes=%d memo-evicted=%d\n",
		st.Evals, st.MemoHits, st.WarmSeeds, st.Rebuilds, st.Forks, st.BatchProbes, st.MemoEvicted)
	return nil
}

// wrapActuator optionally wraps the in-memory data plane in seeded
// fault injection (clean pre-operation failures only — the CLI
// simulates a flaky network, not a crashing controller).
func wrapActuator(mem *controller.MemActuator, seed int64, failRate float64) controller.Actuator {
	if seed == 0 {
		return mem
	}
	return controller.NewFaultActuator(mem, seed, controller.FaultProfile{FailRate: failRate})
}

// printReconcileStep prints one step's actuation transcript and typed
// outcome.
func printReconcileStep(w io.Writer, label string, rep *controller.StepReport) {
	fmt.Fprintln(w, label)
	for _, mv := range rep.Moves {
		detail := string(mv.Result)
		if mv.Retries > 0 {
			detail += fmt.Sprintf(", retries=%d", mv.Retries)
		}
		if mv.Err != "" {
			detail += ": " + mv.Err
		}
		fmt.Fprintf(w, "  move %s [%s]\n", mv.Move, detail)
	}
	line := fmt.Sprintf("  damage %d <= baseline %d | %s", rep.Damage, rep.Baseline, rep.Outcome)
	if rep.Reason != "" {
		line += " (" + rep.Reason + ")"
	}
	fmt.Fprintln(w, line)
}
