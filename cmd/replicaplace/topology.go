package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/topology"
)

// topologyFlags registers the shared failure-domain parameters. A
// topology comes either from -racks/-zones (uniform) or from -topo (an
// explicit spec of any depth); -level picks which level of the tree the
// correlated adversary attacks.
type topologyFlags struct {
	racks   int
	zones   int
	dfail   int
	spec    string
	level   int
	weights string
	caps    string
}

// addTopologyFlags registers the shared failure-domain flags.
// defaultRacks is 0 for commands where the topology section is opt-in
// (plan, compare, attack) and positive where it is the point (topology).
func addTopologyFlags(fs *flag.FlagSet, defaultRacks int) *topologyFlags {
	tf := &topologyFlags{}
	help := "failure domains (racks) to spread nodes over"
	if defaultRacks == 0 {
		help += " (0 = no topology section)"
	}
	fs.IntVar(&tf.racks, "racks", defaultRacks, help)
	fs.IntVar(&tf.zones, "zones", 0, "group racks into this many zones (0 = flat racks)")
	fs.IntVar(&tf.dfail, "dfail", 1, "whole-domain failures the correlated adversary may pick")
	fs.StringVar(&tf.spec, "topo", "", "explicit topology spec of any depth (rack@zone@region:nodes;...), instead of -racks/-zones")
	fs.IntVar(&tf.level, "level", topology.Leaf, "topology level the domain adversary attacks (0 = top, -1 = leaf racks)")
	fs.StringVar(&tf.weights, "weights", "", "node weights as node[-node]*w tokens (e.g. 0*4,6-8*2; unlisted nodes weigh 1) — adversary sections additionally score lost weight")
	fs.StringVar(&tf.caps, "caps", "", "per-domain replica caps as name=N pairs (e.g. rack0=8,zone1=12; any level) — the spreading pass must respect them")
	return tf
}

// enabled reports whether any topology was requested.
func (tf *topologyFlags) enabled() bool { return tf.racks != 0 || tf.spec != "" }

// validate errors when topology flags were set inconsistently: -topo
// excludes the uniform -racks/-zones pair, and -zones/-dfail/-level
// without any topology would be silently dropped otherwise.
func (tf *topologyFlags) validate(fs *flag.FlagSet) error {
	var set []string
	fs.Visit(func(f *flag.Flag) { set = append(set, f.Name) })
	has := func(name string) bool {
		for _, s := range set {
			if s == name {
				return true
			}
		}
		return false
	}
	if tf.spec != "" && (has("racks") || has("zones")) {
		return fmt.Errorf("topology: -topo excludes -racks/-zones")
	}
	if !tf.enabled() {
		for _, orphan := range []string{"zones", "dfail", "level", "weights", "caps"} {
			if has(orphan) {
				return fmt.Errorf("topology: -%s has no effect without -racks or -topo", orphan)
			}
		}
	}
	return nil
}

// parseWeightsSpec parses the -weights flag: comma-separated
// node[-node]*w tokens reusing the topology spec's node-token grammar.
// base carries weights already declared (e.g. *w annotations inside a
// -topo spec): listed nodes override it, unlisted nodes keep it (or
// weigh 1 when base is nil).
func parseWeightsSpec(n int, spec string, base []int) ([]int, error) {
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	copy(weights, base)
	for _, tok := range strings.Split(spec, ",") {
		body, wstr, ok := strings.Cut(tok, "*")
		if !ok {
			return nil, fmt.Errorf("weights: token %q missing *weight", tok)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weights: bad weight in %q (want an integer >= 1)", tok)
		}
		lo, hi, isRange := strings.Cut(body, "-")
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, fmt.Errorf("weights: bad node in %q", tok)
		}
		b := a
		if isRange {
			if b, err = strconv.Atoi(hi); err != nil {
				return nil, fmt.Errorf("weights: bad range in %q", tok)
			}
		}
		if a < 0 || b < a || b >= n {
			return nil, fmt.Errorf("weights: nodes %q out of range [0, %d)", tok, n)
		}
		for v := a; v <= b; v++ {
			weights[v] = w
		}
	}
	return weights, nil
}

// applyCapsSpec parses the -caps flag (name=N pairs) and sets the caps
// on the named domains, which may sit at any level of the tree.
func applyCapsSpec(topo *topology.Topology, spec string) error {
	for _, tok := range strings.Split(spec, ",") {
		name, capStr, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("caps: token %q is not name=N", tok)
		}
		c, err := strconv.Atoi(capStr)
		if err != nil || c < 1 {
			return fmt.Errorf("caps: bad cap in %q (want an integer >= 1)", tok)
		}
		found := false
		for level := range topo.Tree {
			for di := range topo.Tree[level] {
				if topo.Tree[level][di].Name != name {
					continue
				}
				if found {
					return fmt.Errorf("caps: domain name %q is ambiguous across levels", name)
				}
				topo.Tree[level][di].Cap = c
				found = true
			}
		}
		if !found {
			return fmt.Errorf("caps: no domain named %q", name)
		}
	}
	return nil
}

// build materializes the topology the flags describe for n nodes,
// applying the -weights and -caps annotations on top.
func (tf *topologyFlags) build(n int) (*topology.Topology, error) {
	var (
		topo *topology.Topology
		err  error
	)
	if tf.spec != "" {
		topo, err = topology.ParseSpec(n, tf.spec)
	} else {
		if tf.racks < 1 {
			return nil, fmt.Errorf("topology: -racks must be positive")
		}
		if tf.zones > 0 {
			if tf.racks%tf.zones != 0 {
				return nil, fmt.Errorf("topology: -racks %d not divisible by -zones %d", tf.racks, tf.zones)
			}
			topo, err = topology.UniformHierarchy(n, tf.zones, tf.racks/tf.zones)
		} else {
			topo, err = topology.Uniform(n, tf.racks)
		}
	}
	if err != nil {
		return nil, err
	}
	if tf.weights != "" {
		// Merge over any *w annotations the -topo spec declared: the
		// flag overrides the nodes it lists, the spec keeps the rest.
		w, werr := parseWeightsSpec(n, tf.weights, topo.Weights)
		if werr != nil {
			return nil, werr
		}
		topo.Weights = w
	}
	if tf.caps != "" {
		if cerr := applyCapsSpec(topo, tf.caps); cerr != nil {
			return nil, cerr
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if _, err := topo.ResolveLevel(tf.level); err != nil {
		return nil, err
	}
	return topo, nil
}

// levelDomains returns the attacked level's domain count, its display
// word ("rack", "zone", ...) for output that names what is failing, and
// the dfail budget clamped to the count (a 2-region level accepts at
// most d = 2 even when -dfail asked for more).
func levelDomains(topo *topology.Topology, level, dfail int) (int, string, int, error) {
	nd, err := topo.NumDomainsAt(level)
	if err != nil {
		return 0, "", 0, err
	}
	if dfail > nd {
		dfail = nd
	}
	return nd, topo.LevelName(level), dfail, nil
}

// describeTree summarizes a hierarchy top-down ("2 regions > 4 zones >
// 8 racks"); flat topologies yield the empty string.
func describeTree(topo *topology.Topology) string {
	if topo.Levels() == 1 {
		return ""
	}
	parts := make([]string, topo.Levels())
	for l := 0; l < topo.Levels(); l++ {
		nd, _ := topo.NumDomainsAt(l)
		parts[l] = fmt.Sprintf("%d %ss", nd, topo.LevelName(l))
	}
	return strings.Join(parts, " > ")
}

// cmdTopology builds a Combo placement, applies the domain-aware
// spreading pass, and contrasts the node-level and domain-correlated
// adversaries on both layouts — at the chosen attack level, and (for
// hierarchies) at every level of the tree.
func cmdTopology(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("topology", flag.ContinueOnError)
	mf := addModelFlags(fs)
	tf := addTopologyFlags(fs, 4)
	budget := fs.Int64("budget", 0, "adversary search budget (0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.validate(fs); err != nil {
		return err
	}
	p := placement.Params{N: mf.n, B: mf.b, R: mf.r, S: mf.s, K: mf.k}
	if err := p.Validate(); err != nil {
		return err
	}
	topo, err := tf.build(mf.n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology: %d nodes, %d domains", topo.N, topo.NumDomains())
	if desc := describeTree(topo); desc != "" {
		fmt.Fprintf(w, " (%s)", desc)
	}
	fmt.Fprintf(w, "\n  %s\n", topo.Spec())

	combo, spec, bound, err := placement.BuildDefaultCombo(mf.n, mf.r, mf.s, mf.k, mf.b)
	if err != nil {
		return err
	}
	aware, _, err := placement.SpreadAcrossDomainsWith(combo, topo, mf.s, tf.dfail,
		placement.SpreadOpts{Weighted: topo.Weighted()})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "combo placement: lambdas %v, node-adversary guarantee >= %d of %d\n",
		spec.Lambdas, bound, mf.b)

	_, word, dl, err := levelDomains(topo, tf.level, tf.dfail)
	if err != nil {
		return err
	}
	for _, layout := range []struct {
		name string
		pl   *placement.Placement
	}{{"domain-oblivious", combo}, {"domain-aware   ", aware}} {
		stats, err := placement.DomainSpread(layout.pl, topo)
		if err != nil {
			return err
		}
		res, err := adversary.DomainWorstCaseAt(layout.pl, topo, tf.level, mf.s, dl, *budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: replicas span %d-%d domains/object; worst %d-%s failure %v fails %d (Avail = %d, %s)\n",
			layout.name, stats.MinDomains, stats.MaxDomains, dl, word,
			topo.DomainNamesAt(tf.level, res.Domains), res.Failed, res.Avail(mf.b), exactness(res.Exact))
	}

	if topo.Weighted() {
		if err := weightedDomainSection(w, topo, tf.level, mf.s, dl,
			adversary.SearchOpts{Budget: *budget},
			[]namedLayout{{"domain-oblivious", combo}, {"domain-aware", aware}}); err != nil {
			return err
		}
	}

	nodeRes, err := adversary.WorstCase(combo, mf.s, mf.k, *budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "node adversary (%d free nodes): fails %d (Avail = %d, %s)\n",
		mf.k, nodeRes.Failed, nodeRes.Avail(mf.b), exactness(nodeRes.Exact))
	conRes, err := adversary.ConstrainedWorstCaseAt(aware, topo, tf.level, mf.s, mf.k, dl, *budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "constrained adversary (%d nodes in <= %d %ss, aware layout): fails %d (Avail = %d, %s)\n",
		mf.k, dl, word, conRes.Failed, conRes.Avail(mf.b), exactness(conRes.Exact))

	// On hierarchies, sweep the whole tree: the worst whole-domain
	// failure at every level, on the aware layout — the per-level
	// availability picture one number per tier.
	if topo.Levels() > 1 {
		fmt.Fprintf(w, "per-level worst case (aware layout, d clamped to each level):\n")
		for l := 0; l < topo.Levels(); l++ {
			lnd, lword, ld, err := levelDomains(topo, l, tf.dfail)
			if err != nil {
				return err
			}
			res, err := adversary.DomainWorstCaseAt(aware, topo, l, mf.s, ld, *budget)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  level %d (%d %ss): worst %d-%s failure %v fails %d (Avail = %d, %s)\n",
				l, lnd, lword, ld, lword,
				topo.DomainNamesAt(l, res.Domains), res.Failed, res.Avail(mf.b), exactness(res.Exact))
		}
	}
	return nil
}
