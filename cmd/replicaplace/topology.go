package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/topology"
)

// topologyFlags registers the shared failure-domain parameters.
type topologyFlags struct {
	racks int
	zones int
	dfail int
}

// addTopologyFlags registers the shared failure-domain flags.
// defaultRacks is 0 for commands where the topology section is opt-in
// (plan, compare) and positive where it is the point (topology).
func addTopologyFlags(fs *flag.FlagSet, defaultRacks int) *topologyFlags {
	tf := &topologyFlags{}
	help := "failure domains (racks) to spread nodes over"
	if defaultRacks == 0 {
		help += " (0 = no topology section)"
	}
	fs.IntVar(&tf.racks, "racks", defaultRacks, help)
	fs.IntVar(&tf.zones, "zones", 0, "group racks into this many zones (0 = flat racks)")
	fs.IntVar(&tf.dfail, "dfail", 1, "whole-domain failures the correlated adversary may pick")
	return tf
}

// requireRacks errors when topology flags were set explicitly but
// -racks was not, so plan/compare never silently drop -zones/-dfail.
func (tf *topologyFlags) requireRacks(fs *flag.FlagSet) error {
	if tf.racks != 0 {
		return nil
	}
	var orphan string
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "zones" || f.Name == "dfail" {
			orphan = f.Name
		}
	})
	if orphan != "" {
		return fmt.Errorf("topology: -%s has no effect without -racks", orphan)
	}
	return nil
}

// build materializes the topology the flags describe for n nodes.
func (tf *topologyFlags) build(n int) (*topology.Topology, error) {
	if tf.racks < 1 {
		return nil, fmt.Errorf("topology: -racks must be positive")
	}
	if tf.zones > 0 {
		if tf.racks%tf.zones != 0 {
			return nil, fmt.Errorf("topology: -racks %d not divisible by -zones %d", tf.racks, tf.zones)
		}
		return topology.UniformHierarchy(n, tf.zones, tf.racks/tf.zones)
	}
	return topology.Uniform(n, tf.racks)
}

// cmdTopology builds a Combo placement, applies the domain-aware
// spreading pass, and contrasts the node-level and domain-correlated
// adversaries on both layouts.
func cmdTopology(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("topology", flag.ContinueOnError)
	mf := addModelFlags(fs)
	tf := addTopologyFlags(fs, 4)
	budget := fs.Int64("budget", 0, "adversary search budget (0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := placement.Params{N: mf.n, B: mf.b, R: mf.r, S: mf.s, K: mf.k}
	if err := p.Validate(); err != nil {
		return err
	}
	topo, err := tf.build(mf.n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology: %d nodes, %d domains", topo.N, topo.NumDomains())
	if len(topo.Zones) > 0 {
		fmt.Fprintf(w, " in %d zones", len(topo.Zones))
	}
	fmt.Fprintf(w, "\n  %s\n", topo.Spec())

	combo, spec, bound, err := placement.BuildDefaultCombo(mf.n, mf.r, mf.s, mf.k, mf.b)
	if err != nil {
		return err
	}
	aware, _, err := placement.SpreadAcrossDomains(combo, topo, mf.s, tf.dfail)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "combo placement: lambdas %v, node-adversary guarantee >= %d of %d\n",
		spec.Lambdas, bound, mf.b)

	for _, layout := range []struct {
		name string
		pl   *placement.Placement
	}{{"domain-oblivious", combo}, {"domain-aware   ", aware}} {
		stats, err := placement.DomainSpread(layout.pl, topo)
		if err != nil {
			return err
		}
		res, err := adversary.DomainWorstCase(layout.pl, topo, mf.s, tf.dfail, *budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: replicas span %d-%d domains/object; worst %d-domain failure %v fails %d (Avail = %d, %s)\n",
			layout.name, stats.MinDomains, stats.MaxDomains, tf.dfail,
			topo.DomainNames(res.Domains), res.Failed, res.Avail(mf.b), exactness(res.Exact))
	}

	nodeRes, err := adversary.WorstCase(combo, mf.s, mf.k, *budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "node adversary (%d free nodes): fails %d (Avail = %d, %s)\n",
		mf.k, nodeRes.Failed, nodeRes.Avail(mf.b), exactness(nodeRes.Exact))
	conRes, err := adversary.ConstrainedWorstCase(aware, topo, mf.s, mf.k, tf.dfail, *budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "constrained adversary (%d nodes in <= %d domains, aware layout): fails %d (Avail = %d, %s)\n",
		mf.k, tf.dfail, conRes.Failed, conRes.Avail(mf.b), exactness(conRes.Exact))

	if len(topo.Zones) > 0 {
		zl, err := topo.ZoneLevel()
		if err != nil {
			return err
		}
		zres, err := adversary.DomainWorstCase(aware, zl, mf.s, min(tf.dfail, zl.NumDomains()), *budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "zone adversary (whole zones, aware layout): fails %d (Avail = %d, %s)\n",
			zres.Failed, zres.Avail(mf.b), exactness(zres.Exact))
	}
	return nil
}
