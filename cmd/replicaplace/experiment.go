package main

import (
	"flag"
	"fmt"
	"io"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/search"
)

// runOpts carries the experiment-wide knobs into each figure runner.
type runOpts struct {
	full    bool
	workers int
	bound   search.Bound
}

// cmdExperiment regenerates the paper's figures.
func cmdExperiment(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 2,3,4,5,6,7,8,9a,9b,10,11, domains, or all")
	full := fs.Bool("full", false, "paper-scale runs (slow for figs 2 and 7)")
	workers := addWorkersFlag(fs, 1)
	boundFlag := addBoundFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bound, err := search.ParseBound(*boundFlag)
	if err != nil {
		return err
	}
	// The experiments layer treats workers literally (> 1 picks the
	// parallel engines), so resolve the flag's "0 = GOMAXPROCS"
	// convention here.
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	opts := runOpts{full: *full, workers: *workers, bound: bound}
	runners := map[string]func(io.Writer, runOpts) error{
		"2":  runFig2,
		"3":  runFig3,
		"4":  runFig4,
		"5":  runFig5,
		"6":  runFig6,
		"7":  runFig7,
		"8":  runFig8,
		"9a": runFig9a,
		"9b": runFig9b,
		"10": runFig10,
		"11": runFig11,
		// Not a paper figure: the correlated failure-domain extension.
		"domains": runFigDomains,
	}
	if *fig == "all" {
		for _, name := range []string{"2", "3", "4", "5", "6", "7", "8", "9a", "9b", "10", "11", "domains"} {
			fmt.Fprintf(w, "\n===== figure %s =====\n", name)
			if err := runners[name](w, opts); err != nil {
				return fmt.Errorf("figure %s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[*fig]
	if !ok {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return runner(w, opts)
}

func runFig2(w io.Writer, o runOpts) error {
	points, err := experiments.Fig2(experiments.Fig2Opts{Full: o.full})
	if err != nil {
		return err
	}
	return experiments.RenderFig2(w, points)
}

func runFig3(w io.Writer, _ runOpts) error {
	points, err := experiments.Fig3(experiments.Fig3Opts{})
	if err != nil {
		return err
	}
	return experiments.RenderFig3(w, points)
}

func runFig4(w io.Writer, _ runOpts) error {
	entries, err := experiments.Fig4(nil)
	if err != nil {
		return err
	}
	return experiments.RenderFig4(w, entries)
}

func runFig5(w io.Writer, _ runOpts) error {
	curves, err := experiments.Fig5(experiments.Fig5Opts{})
	if err != nil {
		return err
	}
	return experiments.RenderFig5(w, curves)
}

func runFig6(w io.Writer, _ runOpts) error {
	curves, err := experiments.Fig6(experiments.Fig5Opts{})
	if err != nil {
		return err
	}
	return experiments.RenderFig5(w, curves)
}

func runFig7(w io.Writer, o runOpts) error {
	points, err := experiments.Fig7(experiments.Fig7Opts{Full: o.full})
	if err != nil {
		return err
	}
	return experiments.RenderFig7(w, points)
}

func runFig8(w io.Writer, _ runOpts) error {
	points, err := experiments.Fig8(experiments.Fig8Opts{})
	if err != nil {
		return err
	}
	return experiments.RenderFig8(w, points)
}

func runFig9a(w io.Writer, _ runOpts) error {
	res, err := experiments.Fig9(experiments.Fig9Opts{N: 71})
	if err != nil {
		return err
	}
	return res.Render(w)
}

func runFig9b(w io.Writer, _ runOpts) error {
	res, err := experiments.Fig9(experiments.Fig9Opts{N: 257})
	if err != nil {
		return err
	}
	return res.Render(w)
}

func runFig10(w io.Writer, _ runOpts) error {
	for _, n := range []int{31, 71, 257} {
		cells, err := experiments.Fig10(experiments.Fig10Opts{N: n})
		if err != nil {
			return err
		}
		if err := experiments.RenderFig10(w, cells); err != nil {
			return err
		}
	}
	return nil
}

func runFig11(w io.Writer, _ runOpts) error {
	return experiments.RenderFig11(w, experiments.Fig11(0))
}

func runFigDomains(w io.Writer, o runOpts) error {
	cells, err := experiments.DomainTable(experiments.DomainOpts{Workers: o.workers, Bound: o.bound})
	if err != nil {
		return err
	}
	return experiments.RenderDomainTable(w, cells)
}
