package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// update regenerates the golden files instead of diffing against them:
//
//	go test ./cmd/replicaplace -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// attackNodesRE matches the witness node list of an attack. The damage
// and availability figures are deterministic (exact searches), but among
// equally-damaging attacks the parallel adversary may report any witness,
// so golden comparisons normalize the set itself.
var attackNodesRE = regexp.MustCompile(`attack \[[0-9 ]*\]`)

// goldenCases pins the CLI's stdout for fixed parameter sets, so figure
// or formatting regressions surface at the command layer, not just in
// unit tests. Everything runs with exact adversaries (budget 0) to keep
// the numbers deterministic.
var goldenCases = []struct {
	name string
	args []string
}{
	{"plan_n71", []string{"plan", "-n", "71", "-r", "3", "-s", "2", "-k", "4", "-b", "600"}},
	{"plan_racks_n13", []string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-racks", "4", "-dfail", "1"}},
	{"compare_n13", []string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "2", "-budget", "0", "-racks", "4", "-dfail", "1"}},
	{"experiment_fig4", []string{"experiment", "-fig", "4"}},
	{"experiment_fig11", []string{"experiment", "-fig", "11"}},
	{"experiment_domains", []string{"experiment", "-fig", "domains"}},
	{"topology_n12", []string{"topology", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "8",
		"-racks", "3", "-dfail", "1", "-budget", "0"}},
	// The -workers flag must not change what is printed — the searches
	// stay exact, so only wall-clock differs (TestWorkersOutputDeterministic
	// sweeps other worker counts against the same goldens).
	{"plan_racks_workers_n13", []string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-racks", "4", "-dfail", "1", "-workers", "4"}},
	{"compare_workers_n13", []string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "2", "-budget", "0", "-racks", "4", "-dfail", "1", "-workers", "4"}},
	// -stats prints per-search diagnostics (bound, visited states,
	// budget, exactness). Serial searches (-workers 1, plan's default)
	// keep the visited counts deterministic, so the numbers themselves
	// are pinned — an honesty check on the search accounting, and with
	// -bound static a recorded ablation: the static-bound runs of the
	// same searches may only differ in their (never smaller) visited
	// counts.
	{"plan_stats_n13", []string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-racks", "4", "-dfail", "1", "-stats"}},
	{"compare_stats_n13", []string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "2", "-budget", "0", "-racks", "4", "-dfail", "1", "-workers", "1", "-stats"}},
	{"compare_stats_static_n13", []string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "2", "-budget", "0", "-racks", "4", "-dfail", "1", "-workers", "1", "-stats", "-bound", "static"}},
	// -topo takes an explicit spec of any depth; -level aims the
	// correlated adversary at one tier of it. deepSpec is a 12-node
	// region→zone→rack tree (2 regions x 2 zones x 2 racks).
	{"plan_topo_zone_n12", []string{"plan", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "16",
		"-topo", deepSpec, "-level", "1"}},
	{"compare_topo_region_n12", []string{"compare", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "16",
		"-trials", "1", "-budget", "0", "-topo", deepSpec, "-level", "0"}},
	{"topology_tree_n12", []string{"topology", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "8",
		"-topo", deepSpec, "-dfail", "1", "-budget", "0"}},
	// -weights switches the topology sections to ALSO report lost
	// weight (hot node 0 and a warm node 6); -caps annotates domains
	// with replica caps the spreading pass must respect — the rendered
	// spec line shows the cap= annotation, and the spread stays
	// feasible, so the availability numbers are unchanged.
	{"plan_weighted_n13", []string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-racks", "4", "-dfail", "1", "-weights", "0*4,6*2"}},
	{"compare_weighted_n13", []string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
		"-trials", "1", "-budget", "0", "-racks", "4", "-dfail", "1", "-weights", "0*5"}},
	{"topology_caps_n12", []string{"topology", "-n", "12", "-r", "3", "-s", "2", "-k", "6", "-b", "8",
		"-racks", "3", "-dfail", "1", "-budget", "0", "-caps", "rack0=8"}},
	// reconcile drives the continuous-operation loop from a mutation
	// script. Serial exact sessions keep the transcripts deterministic.
	// The three cases pin the loop's contract surface: a full
	// drain/fail/restore cycle ending clean; a budget of one move per
	// step surfacing the degraded-budget outcome; and -seed 7's fault
	// schedule, which exercises rollback at prepare, rollback at add,
	// and the pending -> roll-forward path when the final drop sticks.
	{"reconcile_drain_n24", []string{"reconcile", "-n", "24", "-b", "40", "-racks", "6", "-dfail", "1",
		"-k", "2", "-script", "testdata/reconcile_drain.script"}},
	{"reconcile_budget_n24", []string{"reconcile", "-n", "24", "-b", "40", "-racks", "6", "-dfail", "1",
		"-k", "1", "-settle", "0", "-script", "testdata/reconcile_budget.script"}},
	{"reconcile_fault_n24", []string{"reconcile", "-n", "24", "-b", "40", "-racks", "6", "-dfail", "1",
		"-k", "2", "-seed", "7", "-fail-rate", "0.6", "-script", "testdata/reconcile_fault.script"}},
	// -probe-workers fans candidate probing out over forked sessions;
	// the plan — and so the whole transcript apart from the fork
	// counters — must match the serial drain run byte for byte.
	{"reconcile_probe_workers_n24", []string{"reconcile", "-n", "24", "-b", "40", "-racks", "6", "-dfail", "1",
		"-k", "2", "-probe-workers", "4", "-script", "testdata/reconcile_drain.script"}},
}

// deepSpec is the depth-3 topology the -topo golden cases share:
// 12 nodes, 8 racks in 4 zones in 2 regions.
const deepSpec = "r0@za@east:0,1;r1@za@east:2;r2@zb@east:3,4;r3@zb@east:5;" +
	"r4@zc@west:6,7;r5@zc@west:8;r6@zd@west:9,10;r7@zd@west:11"

// TestWorkersOutputDeterministic pins the -workers contract: the flag
// fans the exact adversary searches out over goroutines, so the printed
// search results (the availability numbers — the schedule-dependent
// witness list is normalized like the goldens) must be identical at
// every worker count.
func TestWorkersOutputDeterministic(t *testing.T) {
	commands := []struct {
		name string
		args []string
	}{
		{"plan-racks", []string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
			"-racks", "4", "-dfail", "1"}},
		{"compare", []string{"compare", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
			"-trials", "2", "-budget", "0", "-racks", "4", "-dfail", "1"}},
	}
	for _, tc := range commands {
		t.Run(tc.name, func(t *testing.T) {
			var want []byte
			for _, workers := range []string{"1", "2", "8"} {
				var buf bytes.Buffer
				args := append(append([]string{}, tc.args...), "-workers", workers)
				if err := run(args, &buf); err != nil {
					t.Fatalf("run(%v): %v", args, err)
				}
				got := attackNodesRE.ReplaceAll(buf.Bytes(), []byte("attack [...]"))
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("-workers %s changed the output:\n--- got ---\n%s\n--- want ---\n%s",
						workers, got, want)
				}
			}
		})
	}
}

// forksRE matches the fork counter in reconcile's session stats line:
// the number of forked worker sessions scales with -probe-workers (and
// with how many candidates each batch holds), so the sweep below
// normalizes it — everything else must be byte-identical.
var forksRE = regexp.MustCompile(`forks=[0-9]+`)

// TestProbeWorkersOutputDeterministic pins the -probe-workers contract:
// the flag fans candidate probing out over forked adversary sessions
// (reconcile) or striped spread sessions (plan), so apart from the fork
// counter the printed transcript must be identical at every width.
func TestProbeWorkersOutputDeterministic(t *testing.T) {
	commands := []struct {
		name string
		args []string
	}{
		{"reconcile-drain", []string{"reconcile", "-n", "24", "-b", "40", "-racks", "6", "-dfail", "1",
			"-k", "2", "-script", "testdata/reconcile_drain.script"}},
		{"plan-racks", []string{"plan", "-n", "13", "-r", "3", "-s", "2", "-k", "3", "-b", "26",
			"-racks", "4", "-dfail", "1"}},
	}
	for _, tc := range commands {
		t.Run(tc.name, func(t *testing.T) {
			var want []byte
			for _, workers := range []string{"1", "2", "8"} {
				var buf bytes.Buffer
				args := append(append([]string{}, tc.args...), "-probe-workers", workers)
				if err := run(args, &buf); err != nil {
					t.Fatalf("run(%v): %v", args, err)
				}
				got := forksRE.ReplaceAll(buf.Bytes(), []byte("forks=..."))
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("-probe-workers %s changed the output:\n--- got ---\n%s\n--- want ---\n%s",
						workers, got, want)
				}
			}
		})
	}
}

func TestGoldenOutputs(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			got := attackNodesRE.ReplaceAll(buf.Bytes(), []byte("attack [...]"))
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output differs from %s (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
