package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/randplace"
	"repro/internal/search"
)

// cmdCompare builds a Combo and a Random placement for the same
// parameters and attacks both with the worst-case adversary — the
// paper's comparison, end to end on concrete placements.
func cmdCompare(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	mf := addModelFlags(fs)
	tf := addTopologyFlags(fs, 0)
	workers := addWorkersFlag(fs, 0)
	boundFlag := addBoundFlag(fs)
	stats := addStatsFlag(fs)
	budget := fs.Int64("budget", 5_000_000, "adversary search budget per placement (0 = exact)")
	trials := fs.Int("trials", 3, "random placements to try")
	seed := fs.Int64("seed", 1, "base seed for random placements")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.validate(fs); err != nil {
		return err
	}
	bound, err := search.ParseBound(*boundFlag)
	if err != nil {
		return err
	}
	// The domain section parallelizes only on explicit -workers: its
	// default budgeted search stays serial so identical invocations keep
	// printing identical (deterministic) lower bounds — workers racing
	// for a shared budget may visit different states run to run.
	domainWorkers := 1
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			domainWorkers = *workers
		}
	})
	p := placement.Params{N: mf.n, B: mf.b, R: mf.r, S: mf.s, K: mf.k}
	if err := p.Validate(); err != nil {
		return err
	}

	nodeOpts := adversary.SearchOpts{Budget: *budget, Workers: cliWorkers(*workers), Bound: bound}
	combo, spec, guarantee, err := placement.BuildDefaultCombo(mf.n, mf.r, mf.s, mf.k, mf.b)
	if err != nil {
		return err
	}
	comboRes, err := adversary.WorstCaseWith(combo, mf.s, mf.k, nodeOpts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "combo placement (lambdas %v):\n", spec.Lambdas)
	fmt.Fprintf(w, "  guaranteed Avail >= %d\n", guarantee)
	fmt.Fprintf(w, "  measured  Avail  = %d (%s, attack %v)\n",
		comboRes.Avail(mf.b), exactness(comboRes.Exact), comboRes.Nodes)
	if *stats {
		fmt.Fprint(w, statsLine("combo", bound, comboRes.Visited, *budget, comboRes.Exact))
	}
	if hist, err := combo.OverlapHistogram(0, 1); err == nil {
		fmt.Fprintf(w, "  replica-set overlap histogram: %v\n", hist)
	}

	fmt.Fprintf(w, "random placements (%d trials):\n", *trials)
	worst := mf.b + 1
	for trial := 0; trial < *trials; trial++ {
		rp, err := randplace.Generate(p, *seed+int64(trial))
		if err != nil {
			return err
		}
		res, err := adversary.WorstCaseWith(rp, mf.s, mf.k, nodeOpts)
		if err != nil {
			return err
		}
		avail := res.Avail(mf.b)
		if avail < worst {
			worst = avail
		}
		fmt.Fprintf(w, "  trial %d: Avail = %d (%s)\n", trial, avail, exactness(res.Exact))
		if *stats {
			fmt.Fprint(w, statsLine(fmt.Sprintf("random trial %d", trial), bound, res.Visited, *budget, res.Exact))
		}
	}
	pr, err := randplace.PrAvailTable(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  analytic prAvail = %d\n", pr)
	fmt.Fprintf(w, "\nverdict: combo guarantees %d; random achieved as low as %d\n", guarantee, worst)
	if tf.enabled() {
		domOpts := adversary.SearchOpts{Budget: *budget, Workers: cliWorkers(domainWorkers), Bound: bound}
		return compareTopologySection(w, mf, tf, combo, p, *trials, *seed, domOpts, *stats)
	}
	return nil
}

// compareTopologySection appends the correlated-failure comparison:
// combo (oblivious and spread) and the same random trials as the
// node-level section, under the worst dfail whole-domain failures at
// the chosen topology level.
func compareTopologySection(w io.Writer, mf *modelFlags, tf *topologyFlags,
	combo *placement.Placement, p placement.Params, trials int, seed int64, opts adversary.SearchOpts, stats bool) error {
	topo, err := tf.build(mf.n)
	if err != nil {
		return err
	}
	var spreadTel placement.SpreadTelemetry
	aware, _, err := placement.SpreadAcrossDomainsWith(combo, topo, mf.s, tf.dfail,
		placement.SpreadOpts{Weighted: topo.Weighted(), Telemetry: &spreadTel})
	if err != nil {
		return err
	}
	nd, word, dl, err := levelDomains(topo, tf.level, tf.dfail)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndomain adversary (%d %ss, worst %d whole-domain failures):\n",
		nd, word, dl)
	for _, layout := range []struct {
		name string
		pl   *placement.Placement
	}{
		{"combo, domain-oblivious", combo},
		{"combo, domain-aware    ", aware},
	} {
		res, err := adversary.DomainWorstCaseAtWith(layout.pl, topo, tf.level, mf.s, dl, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %s: Avail = %d (%s)\n", layout.name, res.Avail(mf.b), exactness(res.Exact))
		if stats {
			fmt.Fprint(w, statsLine(strings.TrimSpace(layout.name), opts.Bound, res.Visited, opts.Budget, res.Exact))
		}
	}
	if stats {
		fmt.Fprint(w, spreadStatsLine(spreadTel))
	}
	if topo.Weighted() {
		if err := weightedDomainSection(w, topo, tf.level, mf.s, dl, opts,
			[]namedLayout{{"combo, domain-oblivious", combo}, {"combo, domain-aware", aware}}); err != nil {
			return err
		}
	}
	if trials < 1 {
		return nil
	}
	worst := mf.b + 1
	allExact := true
	for trial := 0; trial < trials; trial++ {
		rp, err := randplace.Generate(p, seed+int64(trial))
		if err != nil {
			return err
		}
		res, err := adversary.DomainWorstCaseAtWith(rp, topo, tf.level, mf.s, dl, opts)
		if err != nil {
			return err
		}
		if avail := res.Avail(mf.b); avail < worst {
			worst = avail
		}
		allExact = allExact && res.Exact
	}
	fmt.Fprintf(w, "  random (worst of %d)    : Avail = %d (%s)\n",
		trials, worst, exactness(allExact))
	return nil
}

func exactness(exact bool) string {
	if exact {
		return "exact"
	}
	return "budgeted lower bound on damage"
}

// cmdVerify checks a placement file against the Simple(x, λ) property
// and prints quality metrics.
func cmdVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	in := fs.String("in", "", "placement JSON file (required)")
	x := fs.Int("x", 1, "overlap bound to verify against")
	lambda := fs.Int("lambda", 1, "multiplicity bound λ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("verify: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	pl, err := placement.DecodeJSON(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "placement: n=%d r=%d b=%d\n", pl.N, pl.R, pl.B())
	maxOverlap := pl.MaxOverlap(*x)
	status := "SATISFIED"
	if maxOverlap > *lambda {
		status = "VIOLATED"
	}
	fmt.Fprintf(w, "Simple(%d, %d) property: %s (max objects sharing %d nodes: %d)\n",
		*x, *lambda, status, *x+1, maxOverlap)
	spread, mean, err := pl.LoadImbalance()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "load: mean %.2f replicas/node, spread %d\n", mean, spread)
	hist, err := pl.OverlapHistogram(1<<18, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pairwise overlap histogram: %v\n", hist)
	if status == "VIOLATED" {
		return fmt.Errorf("verify: placement is not Simple(%d, %d)", *x, *lambda)
	}
	return nil
}
