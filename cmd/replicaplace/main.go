// Command replicaplace plans, materializes and evaluates worst-case
// availability-optimal replica placements (Li, Gao & Reiter, ICDCS 2015),
// and regenerates every figure of the paper's evaluation.
//
// Usage:
//
//	replicaplace plan    -n 71 -r 3 -s 2 -k 4 -b 600
//	replicaplace place   -n 71 -r 3 -s 2 -k 4 -b 600 -out placement.json
//	replicaplace attack  -in placement.json -s 2 -k 4 [-budget 5000000]
//	replicaplace analyze -n 71 -r 3 -s 2 -k 4 -b 600
//	replicaplace experiment -fig 9a [-full]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replicaplace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: replicaplace <plan|place|attack|analyze|experiment> [flags]")
	}
	switch args[0] {
	case "plan":
		return cmdPlan(args[1:], w)
	case "place":
		return cmdPlace(args[1:], w)
	case "attack":
		return cmdAttack(args[1:], w)
	case "analyze":
		return cmdAnalyze(args[1:], w)
	case "compare":
		return cmdCompare(args[1:], w)
	case "verify":
		return cmdVerify(args[1:], w)
	case "experiment":
		return cmdExperiment(args[1:], w)
	case "-h", "--help", "help":
		fmt.Fprintln(w, "subcommands: plan, place, attack, analyze, compare, verify, experiment")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// modelFlags registers the shared model parameters on a flag set.
type modelFlags struct {
	n, r, s, k, b int
}

func addModelFlags(fs *flag.FlagSet) *modelFlags {
	mf := &modelFlags{}
	fs.IntVar(&mf.n, "n", 71, "number of nodes")
	fs.IntVar(&mf.r, "r", 3, "replicas per object")
	fs.IntVar(&mf.s, "s", 2, "replica failures that fail an object")
	fs.IntVar(&mf.k, "k", 4, "worst-case node failures planned for")
	fs.IntVar(&mf.b, "b", 600, "number of objects")
	return mf
}
