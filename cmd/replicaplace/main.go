// Command replicaplace plans, materializes and evaluates worst-case
// availability-optimal replica placements (Li, Gao & Reiter, ICDCS 2015),
// and regenerates every figure of the paper's evaluation. Beyond the
// paper's independent-failure model, the topology subcommand and the
// topology flags evaluate correlated whole-domain failures over
// arbitrary-depth hierarchies (region → zone → rack) and the
// domain-aware spreading post-pass. A topology is either uniform
// (-racks, optionally grouped by -zones) or an explicit spec of any
// depth (-topo "rack@zone@region:nodes;..."); -level picks the tree
// level the correlated adversary fails (0 = top, -1 = leaf racks), and
// the topology subcommand also sweeps every level.
//
// Usage:
//
//	replicaplace plan    -n 71 -r 3 -s 2 -k 4 -b 600 [-racks 8 -dfail 1] [-topo spec -level 0] [-workers 8] [-stats] [-bound static] [-weights 0*4] [-caps rack0=8]
//	replicaplace place   -n 71 -r 3 -s 2 -k 4 -b 600 -out placement.json
//	replicaplace attack  -in placement.json -s 2 -k 4 [-budget 5000000] [-bound static] [-topo spec -level 0 -dfail 1] [-weights 0*4]
//	replicaplace analyze -n 71 -r 3 -s 2 -k 4 -b 600
//	replicaplace compare -n 13 -r 3 -s 2 -k 3 -b 26 [-racks 4 -dfail 1] [-topo spec -level 0] [-workers 8] [-stats] [-bound static] [-weights 0*4]
//	replicaplace topology -n 13 -r 3 -s 2 -k 3 -b 26 -racks 4 [-zones 2] [-topo spec] [-level 1] [-dfail 1] [-weights 0*4] [-caps rack0=8]
//	replicaplace experiment -fig 9a [-full] [-workers 8]
//	replicaplace experiment -fig domains [-bound static]
//	replicaplace reconcile -n 24 -r 3 -s 2 -b 40 -racks 6 -dfail 1 -k 2 -script muts.txt [-checkpoint ck.json [-resume]] [-seed 7 -fail-rate 0.3]
//
// reconcile is the continuous-operation loop: it consumes a mutation
// script (drain/fail/restore node, weight node w, cap domain n) and
// re-plans incrementally, moving at most -k replicas per step through
// a two-phase migration machine while never letting worst-case damage
// exceed the step's pre-migration guarantee. -checkpoint journals
// every phase transition (fsync'd write-ahead); -resume restarts from
// the journal, rolling the interrupted move forward or back. -seed
// turns on deterministic fault injection in the simulated data plane.
//
// Heterogeneity: -weights marks hot nodes ("0*4,6-8*2": node 0 weighs
// 4, nodes 6-8 weigh 2, the rest 1) — the topology sections then also
// report LOST WEIGHT, with each object inheriting its hottest replica
// host's weight, and the spreading pass minimizes lost weight instead
// of lost objects. -caps bounds the replicas any domain's subtree may
// absorb ("rack0=8,zone1=12", any level of the tree); an unsatisfiable
// cap set fails with a pigeonhole certificate naming the violated
// subtree ("zone z1 allows 3 replicas but its racks need 5"). Both
// annotations can also live inside a -topo spec ("rack0 cap=8:0*4,1-2").
//
// The -workers flag fans the branch-and-bound adversaries out over that
// many goroutines (0 = GOMAXPROCS, 1 = serial); exact search results are
// identical at any worker count — only wall-clock changes. Budget-limited
// parallel searches (compare's default -budget) may report slightly
// different — still valid — lower bounds run to run, because workers race
// for the shared state budget.
//
// The -bound flag is the pruning ablation switch: "residual" (default)
// prunes branch-and-bound with the residual-load bound, "static" with
// the replica-counting bound only. Both return identical results;
// residual visits no more states (often far fewer — see -stats, which
// prints per-search diagnostics: bound, visited states, budget,
// exactness).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/placement"
	"repro/internal/search"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replicaplace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: replicaplace <plan|place|attack|analyze|experiment> [flags]")
	}
	switch args[0] {
	case "plan":
		return cmdPlan(args[1:], w)
	case "place":
		return cmdPlace(args[1:], w)
	case "attack":
		return cmdAttack(args[1:], w)
	case "analyze":
		return cmdAnalyze(args[1:], w)
	case "compare":
		return cmdCompare(args[1:], w)
	case "verify":
		return cmdVerify(args[1:], w)
	case "topology":
		return cmdTopology(args[1:], w)
	case "experiment":
		return cmdExperiment(args[1:], w)
	case "reconcile":
		return cmdReconcile(args[1:], w)
	case "-h", "--help", "help":
		fmt.Fprintln(w, "subcommands: plan, place, attack, analyze, compare, verify, topology, experiment, reconcile")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// modelFlags registers the shared model parameters on a flag set.
type modelFlags struct {
	n, r, s, k, b int
}

func addModelFlags(fs *flag.FlagSet) *modelFlags {
	mf := &modelFlags{}
	fs.IntVar(&mf.n, "n", 71, "number of nodes")
	fs.IntVar(&mf.r, "r", 3, "replicas per object")
	fs.IntVar(&mf.s, "s", 2, "replica failures that fail an object")
	fs.IntVar(&mf.k, "k", 4, "worst-case node failures planned for")
	fs.IntVar(&mf.b, "b", 600, "number of objects")
	return mf
}

// addWorkersFlag registers the shared adversary worker-count flag. def
// is 1 where the command was historically serial and 0 where its
// node-level search already fanned out over GOMAXPROCS (compare, whose
// domain section nevertheless stays serial unless -workers is explicit
// — see cmdCompare).
func addWorkersFlag(fs *flag.FlagSet, def int) *int {
	return fs.Int("workers", def, "adversary search workers (0 = GOMAXPROCS, 1 = serial)")
}

// addProbeWorkersFlag registers the planning-side probe fan-out width:
// how many forked adversary sessions (reconcile) or private spread
// sessions (plan) score candidates concurrently. The fan-out is
// result-deterministic at any width — it changes wall-clock only — so
// the default stays the historical serial scan.
func addProbeWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("probe-workers", 1, "parallel candidate-probe workers (deterministic; 1 = serial)")
}

// cliWorkers maps the CLI worker convention (0 = GOMAXPROCS) onto the
// adversary.SearchOpts one (< 0 = GOMAXPROCS).
func cliWorkers(w int) int {
	if w == 0 {
		return -1
	}
	return w
}

// addBoundFlag registers the branch-and-bound pruning-bound ablation
// switch shared by the searching commands.
func addBoundFlag(fs *flag.FlagSet) *string {
	return fs.String("bound", "residual", "branch-and-bound pruning bound: residual | static (ablation)")
}

// addStatsFlag registers the search-diagnostics switch.
func addStatsFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("stats", false, "print search diagnostics (visited states, budget, exactness)")
}

// statsLine formats the diagnostics -stats prints after a search: the
// pruning bound, the budget as used/limit (used == states visited; the
// work-stealing driver settles its leases, so the count is exact), and
// whether the search proved its result exact.
func statsLine(label string, bound search.Bound, visited, budget int64, exact bool) string {
	limit := "unlimited"
	if budget > 0 {
		limit = fmt.Sprintf("%d", budget)
	}
	return fmt.Sprintf("  search stats [%s]: bound=%s budget=%d/%s exact=%v\n",
		label, bound, visited, limit, exact)
}

// spreadStatsLine formats the spread pass's candidate-scoring
// diagnostics: how many exact evaluations its incremental session
// answered from the damage memo or warm-started from the previous
// candidate's witness, versus full instance rebuilds.
func spreadStatsLine(tel placement.SpreadTelemetry) string {
	return fmt.Sprintf("  spread stats: evals=%d memo-hits=%d warm-seeds=%d rebuilds=%d\n",
		tel.Evals, tel.MemoHits, tel.WarmSeeds, tel.Rebuilds)
}
