// Command replicalint is the determinism & concurrency contract
// checker for this repository. It bundles five analyzers:
//
//	detrange      map iteration order must not reach deterministic outputs
//	nodeterm      no wall-clock / global rand / env / GOMAXPROCS in core code
//	locksafe      locks travel by pointer, unlock on every path, shard
//	              stripes never held across evaluation or channels
//	phaseswitch   switches over marked state-machine enums are exhaustive
//	journalfsync  checkpoint writes flow through the atomic fsync'd writer
//
// Two invocation modes:
//
//	replicalint [packages...]          standalone; defaults to ./...
//	go vet -vettool=$(pwd)/bin/replicalint ./...
//
// The second works because replicalint speaks the go command's vet
// unit protocol (-V=full identity probe, -flags capability query, then
// one JSON cfg per compilation unit). Suppressions use
// `//lint:allow <analyzer> <reason>` — the reason is mandatory.
// `make lint` is the canonical entry point.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/lint/driver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replicalint: ")
	args := os.Args[1:]

	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			printVersion()
			return
		case args[0] == "-flags":
			// Capability query: we accept no analyzer flags, so the go
			// command passes none.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(driver.RunVetUnit(args[0], os.Stderr))
		}
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	found, err := driver.RunStandalone(patterns, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		os.Exit(1)
	}
}

// printVersion answers the go command's tool-identity probe. The
// format — name, "version devel", and a content hash as buildID — is
// what `go vet` parses to key its action cache, so rebuilding the tool
// invalidates cached vet results.
func printVersion() {
	prog, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, string(h.Sum(nil)))
}
